// A MySQL-like database server on the simulated environment, executing its
// workload on a real mini SQL engine (apps/sql).
//
// Startup: binds port 3306, opens descriptors for the privilege tables and
// each table file, creates the catalog (orders, customers, sessions, and
// the empty audit table killer queries poke at). Per item: SQL statements
// run through the engine; CONNECT items do the reverse-DNS dance.
//
// Five study faults are implemented as real engine-level code bugs and are
// enabled when the armed fault carries the matching id:
//   mysql-ei-01  update-while-scanning index corruption
//   mysql-ei-02  ORDER BY over zero rows, missing initialization
//   mysql-ei-03  COUNT(*) on an empty table
//   mysql-ei-04  OPTIMIZE TABLE missing initialization
//   mysql-ei-05  FLUSH TABLES after LOCK TABLES
#pragma once

#include "apps/app.hpp"
#include "apps/sql/engine.hpp"

namespace faultstudy::apps {

struct DatabaseConfig {
  std::size_t base_fds = 32;    ///< privilege tables + per-table descriptors
  std::size_t worker_pool = 4;  ///< service threads (modelled as processes)
  int listen_port = 3306;
  std::size_t orders_rows = 200;
};

class Database final : public BaseApp {
 public:
  explicit Database(const DatabaseConfig& config = {});

  void arm_fault(const ActiveFault& fault) override;

  bool start(env::Environment& e) override;
  StepResult handle(const WorkItem& item, env::Environment& e) override;
  void stop(env::Environment& e) override;
  SnapshotPtr snapshot() const override;
  bool restore(const SnapshotPtr& snapshot, env::Environment& e) override;
  void rejuvenate(env::Environment& e) override;

  std::uint64_t rows(const std::string& table) const;
  std::uint64_t queries_executed() const noexcept { return queries_; }
  const sql::Engine& engine() const noexcept { return engine_; }

 private:
  struct DbSnapshot;
  void create_catalog();

  DatabaseConfig config_;
  sql::Engine engine_;
  std::uint64_t queries_ = 0;
};

}  // namespace faultstudy::apps
