// An Apache-like prefork web server on the simulated environment.
//
// Startup: binds port 80, opens its configured descriptors (config, logs,
// vhost log files), spawns a prefork worker pool. Per request: writes the
// access log, serves from or fills a disk cache, spawns a transient CGI
// child for heavy requests, performs DNS lookups when the request needs one.
// Two study faults are implemented as real parser-level code bugs, enabled
// when the armed fault carries the matching id:
//   apache-ei-01  overflow in the URI hash calculation on a very long URL
//   apache-ei-04  index_directory() palloc(0) on a zero-entry directory
#pragma once

#include "apps/app.hpp"
#include "apps/http/request.hpp"

namespace faultstudy::apps {

struct WebServerConfig {
  std::size_t base_fds = 24;     ///< config + logs + per-vhost descriptors
  std::size_t worker_pool = 6;   ///< prefork children
  int listen_port = 80;
  std::uint64_t cache_quota = 1ull << 20;  ///< proxy/object cache budget
};

class WebServer final : public BaseApp {
 public:
  explicit WebServer(const WebServerConfig& config = {});

  void arm_fault(const ActiveFault& fault) override;

  bool start(env::Environment& e) override;
  StepResult handle(const WorkItem& item, env::Environment& e) override;
  void stop(env::Environment& e) override;
  SnapshotPtr snapshot() const override;
  bool restore(const SnapshotPtr& snapshot, env::Environment& e) override;
  void rejuvenate(env::Environment& e) override;

  std::uint64_t requests_served() const noexcept { return served_; }

 private:
  struct WebSnapshot;

  WebServerConfig config_;
  http::HttpFaultFlags http_flags_;
  std::uint64_t served_ = 0;     ///< part of app state (checkpointed)
  std::uint64_t cache_fills_ = 0;
};

}  // namespace faultstudy::apps
