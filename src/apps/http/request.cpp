#include "apps/http/request.hpp"

namespace faultstudy::apps::http {

bool hash_uri(std::string_view uri, bool buggy, std::uint32_t* hash_out) {
  // The fixed path hashes the URI directly. The buggy path first copies it
  // into a fixed working buffer and derives bucket indices from the copy
  // length — without checking the length against the buffer, which is the
  // overflow the study describes. We model the memory corruption as a
  // detected overrun rather than real UB.
  std::uint32_t h = 2166136261u;
  if (buggy) {
    if (uri.size() > kUriBufferSize) {
      if (hash_out != nullptr) *hash_out = 0;
      return false;  // wrote past the bucket array -> segfault
    }
  }
  for (const char c : uri) {
    h ^= static_cast<unsigned char>(c);
    h *= 16777619u;
  }
  if (hash_out != nullptr) *hash_out = h;
  return true;
}

ParseOutcome parse_request(std::string_view line,
                           const HttpFaultFlags& flags) {
  ParseOutcome outcome;

  // Request line: METHOD SP URI [SP HTTP/x.y]
  const auto sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    outcome.status = ParseStatus::kBadRequest;
    outcome.detail = "no URI in request line";
    return outcome;
  }
  outcome.request.method = std::string(line.substr(0, sp1));
  auto rest = line.substr(sp1 + 1);
  const auto sp2 = rest.find(' ');
  outcome.request.uri =
      std::string(sp2 == std::string_view::npos ? rest : rest.substr(0, sp2));
  if (outcome.request.uri.empty() || outcome.request.uri[0] != '/') {
    outcome.status = ParseStatus::kBadRequest;
    outcome.detail = "URI must be absolute";
    return outcome;
  }
  const auto q = outcome.request.uri.find('?');
  outcome.request.path = outcome.request.uri.substr(0, q);
  if (q != std::string::npos) {
    outcome.request.query = outcome.request.uri.substr(q + 1);
  }

  std::uint32_t hash = 0;
  if (!hash_uri(outcome.request.uri, flags.long_url_hash_overflow, &hash)) {
    outcome.status = ParseStatus::kCrash;
    outcome.detail = "segfault: overflow in the hash calculation on a very "
                     "long URL";
    return outcome;
  }
  return outcome;
}

ListingOutcome index_directory(const std::vector<std::string>& entries,
                               const HttpFaultFlags& flags) {
  ListingOutcome outcome;
  if (flags.empty_dir_palloc_bug && entries.empty()) {
    // palloc(0) returned a zero-length block; index_directory() writes the
    // header row into slot 0 anyway.
    outcome.crashed = true;
    return outcome;
  }
  outcome.body = "<ul>\n";
  for (const auto& entry : entries) {
    outcome.body += "  <li>" + entry + "</li>\n";
  }
  outcome.body += "</ul>\n";
  return outcome;
}

}  // namespace faultstudy::apps::http
