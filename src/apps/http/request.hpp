// HTTP request parsing for the simulated web server, with the study's
// Apache bugs implemented as real, individually-armable code faults:
//
//   long_url_hash_overflow (apache-ei-01): "dies with a segfault when the
//       submitted URL is very long. This problem was a result of an
//       overflow in the hash calculation" — the URI hash is computed into
//       a fixed-size bucket array indexed without a bounds check; URIs
//       longer than the internal buffer overrun it.
//   empty_dir_palloc_bug (apache-ei-04): "this error occurs when directory
//       listing is turned on and the directory has zero entries. The
//       palloc() call used in index_directory() doesn't handle size zero
//       properly" — the directory lister allocates entry_count slots and
//       unconditionally touches slot 0.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace faultstudy::apps::http {

struct HttpFaultFlags {
  bool long_url_hash_overflow = false;
  bool empty_dir_palloc_bug = false;
};

struct Request {
  std::string method;  ///< GET, POST, HEAD
  std::string uri;     ///< path + optional query
  std::string path;    ///< uri up to '?'
  std::string query;   ///< after '?', may be empty
};

enum class ParseStatus : std::uint8_t {
  kOk = 0,
  kBadRequest,  ///< malformed request line (rejected with 400)
  kCrash,       ///< an injected bug fired: the serving child is gone
};

struct ParseOutcome {
  ParseStatus status = ParseStatus::kOk;
  Request request;
  std::string detail;
};

/// Size of the URI working buffer in the (buggy) hash path. Real Apache's
/// was larger; the value only sets where the boundary lies.
inline constexpr std::size_t kUriBufferSize = 256;

/// Parses a request line ("GET /path?query") and runs the request-hash
/// path. With long_url_hash_overflow set, a URI longer than the working
/// buffer overruns the bucket array — the crash the study describes.
ParseOutcome parse_request(std::string_view line, const HttpFaultFlags& flags);

/// The request-hash the buggy path overflows on; exposed for tests. Returns
/// false (overflow!) when the bug is armed and the URI exceeds the buffer.
bool hash_uri(std::string_view uri, bool buggy, std::uint32_t* hash_out);

/// index_directory(): formats a directory listing given the entry names.
/// With empty_dir_palloc_bug set and zero entries, the palloc(0) result is
/// dereferenced — crash. Returns the listing body, or nullopt-style crash
/// via the outcome flag.
struct ListingOutcome {
  bool crashed = false;
  std::string body;
};
ListingOutcome index_directory(const std::vector<std::string>& entries,
                               const HttpFaultFlags& flags);

}  // namespace faultstudy::apps::http
