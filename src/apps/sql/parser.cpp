#include "apps/sql/parser.hpp"

#include "apps/sql/lexer.hpp"

namespace faultstudy::apps::sql {

namespace {

using util::Err;
using util::Result;

bool evaluate_op(CompareOp op, int cmp) noexcept {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<Statement>> parse_all() {
    std::vector<Statement> out;
    while (!at_end()) {
      if (accept_symbol(";")) continue;  // empty statement
      auto stmt = parse_statement();
      if (!stmt.ok()) return Err{stmt.error()};
      out.push_back(std::move(stmt).value());
      if (!at_end() && !accept_symbol(";")) {
        return Err{std::string("expected ';' after statement, got '") +
                   current().text + "'"};
      }
    }
    return out;
  }

 private:
  const Token& current() const { return tokens_[pos_]; }
  bool at_end() const { return current().kind == TokenKind::kEnd; }
  void advance() {
    if (!at_end()) ++pos_;
  }

  bool accept_keyword(std::string_view kw) {
    if (current().kind == TokenKind::kKeyword && current().text == kw) {
      advance();
      return true;
    }
    return false;
  }
  bool accept_symbol(std::string_view s) {
    if (current().kind == TokenKind::kSymbol && current().text == s) {
      advance();
      return true;
    }
    return false;
  }

  Result<std::string> expect_identifier() {
    if (current().kind != TokenKind::kIdentifier) {
      return Err{"expected identifier, got '" + current().text + "'"};
    }
    std::string name = current().text;
    advance();
    return name;
  }

  Result<Value> expect_literal() {
    if (current().kind == TokenKind::kInteger) {
      Value v = current().number;
      advance();
      return v;
    }
    if (current().kind == TokenKind::kString) {
      Value v = current().text;
      advance();
      return v;
    }
    return Err{"expected literal, got '" + current().text + "'"};
  }

  Result<Statement> parse_statement() {
    if (accept_keyword("SELECT")) return parse_select();
    if (accept_keyword("INSERT")) return parse_insert();
    if (accept_keyword("UPDATE")) return parse_update();
    if (accept_keyword("DELETE")) return parse_delete();
    if (accept_keyword("CREATE")) return parse_create();
    if (accept_keyword("OPTIMIZE")) return parse_optimize();
    if (accept_keyword("LOCK")) return parse_lock();
    if (accept_keyword("UNLOCK")) return parse_unlock();
    if (accept_keyword("FLUSH")) return parse_flush();
    return Err{"expected a statement, got '" + current().text + "'"};
  }

  Result<std::vector<Predicate>> parse_where_opt() {
    std::vector<Predicate> preds;
    if (!accept_keyword("WHERE")) return preds;
    while (true) {
      Predicate p;
      auto col = expect_identifier();
      if (!col.ok()) return Err{col.error()};
      p.column = std::move(col).value();

      if (accept_symbol("=")) {
        p.op = CompareOp::kEq;
      } else if (accept_symbol("!=")) {
        p.op = CompareOp::kNe;
      } else if (accept_symbol("<=")) {
        p.op = CompareOp::kLe;
      } else if (accept_symbol(">=")) {
        p.op = CompareOp::kGe;
      } else if (accept_symbol("<")) {
        p.op = CompareOp::kLt;
      } else if (accept_symbol(">")) {
        p.op = CompareOp::kGt;
      } else {
        return Err{"expected comparison operator, got '" + current().text + "'"};
      }
      auto lit = expect_literal();
      if (!lit.ok()) return Err{lit.error()};
      p.literal = std::move(lit).value();
      preds.push_back(std::move(p));
      if (!accept_keyword("AND")) break;
    }
    return preds;
  }

  Result<Statement> parse_select() {
    SelectStatement s;
    if (accept_keyword("COUNT")) {
      if (!accept_symbol("(") || !accept_symbol("*") || !accept_symbol(")")) {
        return Err{std::string("expected COUNT(*)")};
      }
      s.count_star = true;
    } else if (accept_symbol("*")) {
      // all columns
    } else {
      while (true) {
        auto col = expect_identifier();
        if (!col.ok()) return Err{col.error()};
        s.columns.push_back(std::move(col).value());
        if (!accept_symbol(",")) break;
      }
    }
    if (!accept_keyword("FROM")) return Err{std::string("expected FROM")};
    auto table = expect_identifier();
    if (!table.ok()) return Err{table.error()};
    s.table = std::move(table).value();

    auto where = parse_where_opt();
    if (!where.ok()) return Err{where.error()};
    s.where = std::move(where).value();

    if (accept_keyword("ORDER")) {
      if (!accept_keyword("BY")) return Err{std::string("expected BY")};
      OrderBy ob;
      auto col = expect_identifier();
      if (!col.ok()) return Err{col.error()};
      ob.column = std::move(col).value();
      if (accept_keyword("DESC")) {
        ob.descending = true;
      } else {
        accept_keyword("ASC");
      }
      s.order_by = std::move(ob);
    }
    if (accept_keyword("LIMIT")) {
      if (current().kind != TokenKind::kInteger) {
        return Err{std::string("expected integer after LIMIT")};
      }
      s.limit = current().number;
      advance();
    }
    Statement out;
    out.node = std::move(s);
    return out;
  }

  Result<Statement> parse_insert() {
    if (!accept_keyword("INTO")) return Err{std::string("expected INTO")};
    InsertStatement s;
    auto table = expect_identifier();
    if (!table.ok()) return Err{table.error()};
    s.table = std::move(table).value();
    if (!accept_keyword("VALUES") || !accept_symbol("(")) {
      return Err{std::string("expected VALUES (")};
    }
    while (true) {
      auto lit = expect_literal();
      if (!lit.ok()) return Err{lit.error()};
      s.values.push_back(std::move(lit).value());
      if (!accept_symbol(",")) break;
    }
    if (!accept_symbol(")")) return Err{std::string("expected ')'")};
    Statement out;
    out.node = std::move(s);
    return out;
  }

  Result<Statement> parse_update() {
    UpdateStatement s;
    auto table = expect_identifier();
    if (!table.ok()) return Err{table.error()};
    s.table = std::move(table).value();
    if (!accept_keyword("SET")) return Err{std::string("expected SET")};
    auto col = expect_identifier();
    if (!col.ok()) return Err{col.error()};
    s.column = std::move(col).value();
    if (!accept_symbol("=")) return Err{std::string("expected '='")};
    auto lit = expect_literal();
    if (!lit.ok()) return Err{lit.error()};
    s.value = std::move(lit).value();
    auto where = parse_where_opt();
    if (!where.ok()) return Err{where.error()};
    s.where = std::move(where).value();
    Statement out;
    out.node = std::move(s);
    return out;
  }

  Result<Statement> parse_delete() {
    if (!accept_keyword("FROM")) return Err{std::string("expected FROM")};
    DeleteStatement s;
    auto table = expect_identifier();
    if (!table.ok()) return Err{table.error()};
    s.table = std::move(table).value();
    auto where = parse_where_opt();
    if (!where.ok()) return Err{where.error()};
    s.where = std::move(where).value();
    Statement out;
    out.node = std::move(s);
    return out;
  }

  Result<Statement> parse_create() {
    if (!accept_keyword("TABLE")) return Err{std::string("expected TABLE")};
    CreateStatement s;
    auto table = expect_identifier();
    if (!table.ok()) return Err{table.error()};
    s.table = std::move(table).value();
    if (!accept_symbol("(")) return Err{std::string("expected '('")};
    while (true) {
      Column col;
      auto name = expect_identifier();
      if (!name.ok()) return Err{name.error()};
      col.name = std::move(name).value();
      if (accept_keyword("INT")) {
        col.type = ColumnType::kInteger;
      } else if (accept_keyword("TEXT")) {
        col.type = ColumnType::kText;
      } else {
        return Err{std::string("expected INT or TEXT")};
      }
      s.schema.columns.push_back(std::move(col));
      if (!accept_symbol(",")) break;
    }
    if (!accept_symbol(")")) return Err{std::string("expected ')'")};
    Statement out;
    out.node = std::move(s);
    return out;
  }

  Result<Statement> parse_optimize() {
    if (!accept_keyword("TABLE")) return Err{std::string("expected TABLE")};
    AdminStatement s;
    s.kind = AdminStatement::Kind::kOptimize;
    auto table = expect_identifier();
    if (!table.ok()) return Err{table.error()};
    s.table = std::move(table).value();
    Statement out;
    out.node = std::move(s);
    return out;
  }

  Result<Statement> parse_lock() {
    if (!accept_keyword("TABLES")) return Err{std::string("expected TABLES")};
    AdminStatement s;
    s.kind = AdminStatement::Kind::kLockTables;
    auto table = expect_identifier();
    if (!table.ok()) return Err{table.error()};
    s.table = std::move(table).value();
    if (!accept_keyword("WRITE")) accept_keyword("READ");
    Statement out;
    out.node = std::move(s);
    return out;
  }

  Result<Statement> parse_unlock() {
    if (!accept_keyword("TABLES")) return Err{std::string("expected TABLES")};
    AdminStatement s;
    s.kind = AdminStatement::Kind::kUnlockTables;
    Statement out;
    out.node = std::move(s);
    return out;
  }

  Result<Statement> parse_flush() {
    if (!accept_keyword("TABLES")) return Err{std::string("expected TABLES")};
    AdminStatement s;
    s.kind = AdminStatement::Kind::kFlushTables;
    Statement out;
    out.node = std::move(s);
    return out;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

bool evaluate(CompareOp op, const Value& lhs, const Value& rhs) noexcept {
  return evaluate_op(op, compare(lhs, rhs));
}

util::Result<std::vector<Statement>> parse(std::string_view sql) {
  auto tokens = lex(sql);
  if (!tokens.ok()) return util::Err{tokens.error()};
  Parser parser(std::move(tokens).value());
  return parser.parse_all();
}

}  // namespace faultstudy::apps::sql
