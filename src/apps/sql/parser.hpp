// Recursive-descent parser for the mini SQL dialect.
#pragma once

#include <string_view>
#include <vector>

#include "apps/sql/ast.hpp"
#include "util/result.hpp"

namespace faultstudy::apps::sql {

/// Parses a ';'-separated statement list. Empty statements are skipped.
util::Result<std::vector<Statement>> parse(std::string_view sql);

}  // namespace faultstudy::apps::sql
