// SQL tokenizer for the mini engine's dialect.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace faultstudy::apps::sql {

enum class TokenKind : std::uint8_t {
  kKeyword,     ///< SELECT, FROM, WHERE, ... (uppercased)
  kIdentifier,  ///< table / column names (case preserved)
  kInteger,
  kString,      ///< '...' literal, quotes stripped
  kSymbol,      ///< ( ) , ; * = < > <= >= !=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::int64_t number = 0;
};

/// Tokenizes one statement list. Unterminated strings are errors.
util::Result<std::vector<Token>> lex(std::string_view sql);

/// True if `word` (already uppercased) is a keyword of the dialect.
bool is_keyword(std::string_view upper);

}  // namespace faultstudy::apps::sql
