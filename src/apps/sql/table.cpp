#include "apps/sql/table.hpp"

namespace faultstudy::apps::sql {

Slot Table::insert(Row row) {
  const auto slot = static_cast<Slot>(rows_.size());
  if (!row.empty()) index_.emplace(row[0], slot);
  rows_.push_back(std::move(row));
  dead_.push_back(false);
  ++live_rows_;
  return slot;
}

void Table::erase(Slot slot) {
  if (slot >= rows_.size() || dead_[slot]) return;
  dead_[slot] = true;
  --live_rows_;
  const auto [lo, hi] = index_.equal_range(rows_[slot][0]);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == slot) {
      index_.erase(it);
      break;
    }
  }
}

bool Table::is_live(Slot slot) const noexcept {
  return slot < rows_.size() && !dead_[slot];
}

void Table::update_cell(Slot slot, int column, Value value,
                        bool corrupt_index_on_key_move) {
  if (!is_live(slot)) return;
  Row& r = rows_[slot];
  if (column < 0 || static_cast<std::size_t>(column) >= r.size()) return;

  if (column == 0 && compare(r[0], value) != 0) {
    if (!corrupt_index_on_key_move) {
      // Correct behavior: move the index entry to the new key.
      const auto [lo, hi] = index_.equal_range(r[0]);
      for (auto it = lo; it != hi; ++it) {
        if (it->second == slot) {
          index_.erase(it);
          break;
        }
      }
    }
    // The buggy path (mysql-ei-01) skips the erase: the stale entry stays
    // behind, so the row is now indexed under two keys.
    index_.emplace(value, slot);
  }
  r[static_cast<std::size_t>(column)] = std::move(value);
}

std::vector<Slot> Table::scan_heap() const {
  std::vector<Slot> out;
  for (Slot s = 0; s < rows_.size(); ++s) {
    if (!dead_[s]) out.push_back(s);
  }
  return out;
}

Table::IndexCursor Table::index_scan() const {
  return IndexCursor(index_.begin(), index_.end());
}

bool Table::check_index() const {
  if (index_.size() != live_rows_) return false;
  for (const auto& [key, slot] : index_) {
    if (!is_live(slot)) return false;
    if (compare(rows_[slot][0], key) != 0) return false;
  }
  return true;
}

void Table::compact() {
  std::vector<Row> live;
  live.reserve(live_rows_);
  for (Slot s = 0; s < rows_.size(); ++s) {
    if (!dead_[s]) live.push_back(std::move(rows_[s]));
  }
  rows_.clear();
  dead_.clear();
  index_.clear();
  live_rows_ = 0;
  for (auto& row : live) insert(std::move(row));
}

}  // namespace faultstudy::apps::sql
