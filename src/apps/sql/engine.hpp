// The mini SQL engine: parser + storage + executor, with the study's five
// described MySQL bugs implemented as real, individually-armable code
// faults:
//
//   update_index_scan_bug   (mysql-ei-01) UPDATE drives the index-scan
//       cursor and moves keys without removing the stale entry, "creating
//       duplicate values in the index"; the post-statement index check
//       crashes the server. The FIXED path is the paper's fix: "first
//       scanning for all matching rows and then updating the found rows".
//   orderby_empty_missing_init (mysql-ei-02) the sort path reads its state
//       uninitialized when the result set is empty.
//   count_on_empty_crash    (mysql-ei-03) COUNT(*) misses the check for
//       empty tables.
//   optimize_missing_init   (mysql-ei-04) OPTIMIZE TABLE uses a structure
//       a missing initialization statement left stale.
//   flush_after_lock_bug    (mysql-ei-05) FLUSH TABLES while the session
//       holds a LOCK TABLES lock re-enters the lock state machine.
//
// The engine is value-semantic (copyable) so the Database application's
// snapshots capture the full catalog + data + lock state.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "apps/sql/parser.hpp"
#include "apps/sql/table.hpp"

namespace faultstudy::apps::sql {

struct SqlFaultFlags {
  bool update_index_scan_bug = false;
  bool orderby_empty_missing_init = false;
  bool count_on_empty_crash = false;
  bool optimize_missing_init = false;
  bool flush_after_lock_bug = false;
};

enum class ExecStatus : std::uint8_t {
  kOk = 0,
  kError,  ///< statement rejected (parse error, unknown table, ...)
  kCrash,  ///< the engine hit an injected bug: the server is gone
};

struct ExecResult {
  ExecStatus status = ExecStatus::kOk;
  std::string message;
  std::vector<Row> rows;      ///< SELECT output
  std::int64_t affected = 0;  ///< rows touched, or the COUNT(*) value
};

class Engine {
 public:
  explicit Engine(SqlFaultFlags flags = {}) : flags_(flags) {}

  void set_fault_flags(SqlFaultFlags flags) noexcept { flags_ = flags; }
  const SqlFaultFlags& fault_flags() const noexcept { return flags_; }

  /// Parses and runs a ';'-separated statement list, stopping at the first
  /// error or crash. Returns the last statement's result.
  ExecResult execute(std::string_view sql);

  /// Direct statement execution (parser bypass, used by tests).
  ExecResult run(const Statement& statement);

  Table* find_table(const std::string& name);
  const Table* find_table(const std::string& name) const;
  std::size_t table_count() const noexcept { return tables_.size(); }

  bool holds_lock() const noexcept { return !locked_table_.empty(); }
  const std::string& locked_table() const noexcept { return locked_table_; }

 private:
  ExecResult run_select(const SelectStatement& s);
  ExecResult run_insert(const InsertStatement& s);
  ExecResult run_update(const UpdateStatement& s);
  ExecResult run_delete(const DeleteStatement& s);
  ExecResult run_create(const CreateStatement& s);
  ExecResult run_admin(const AdminStatement& s);

  bool matches(const Table& table, Slot slot,
               const std::vector<Predicate>& where, std::string* error) const;

  std::map<std::string, Table> tables_;
  std::string locked_table_;
  SqlFaultFlags flags_;
};

}  // namespace faultstudy::apps::sql
