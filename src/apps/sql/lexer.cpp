#include "apps/sql/lexer.hpp"

#include <cctype>
#include <unordered_set>

namespace faultstudy::apps::sql {

bool is_keyword(std::string_view upper) {
  static const std::unordered_set<std::string_view> kKeywords = {
      "SELECT", "FROM",  "WHERE",  "ORDER",    "BY",     "INSERT", "INTO",
      "VALUES", "UPDATE", "SET",   "DELETE",   "COUNT",  "CREATE", "TABLE",
      "INT",    "TEXT",  "AND",    "LIMIT",    "OPTIMIZE", "FLUSH", "TABLES",
      "LOCK",   "UNLOCK", "WRITE", "READ",     "ASC",    "DESC",
  };
  return kKeywords.contains(upper);
}

util::Result<std::vector<Token>> lex(std::string_view sql) {
  std::vector<Token> out;
  std::size_t i = 0;
  const auto peek = [&](std::size_t k = 0) -> char {
    return i + k < sql.size() ? sql[i + k] : '\0';
  };

  while (i < sql.size()) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (i < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '_')) {
        word += sql[i++];
      }
      std::string upper = word;
      for (char& ch : upper) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      Token t;
      if (is_keyword(upper)) {
        t.kind = TokenKind::kKeyword;
        t.text = upper;
      } else {
        t.kind = TokenKind::kIdentifier;
        t.text = word;
      }
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::string num;
      num += sql[i++];
      while (i < sql.size() && std::isdigit(static_cast<unsigned char>(sql[i]))) {
        num += sql[i++];
      }
      Token t;
      t.kind = TokenKind::kInteger;
      t.text = num;
      t.number = std::stoll(num);
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string body;
      while (i < sql.size() && sql[i] != '\'') body += sql[i++];
      if (i >= sql.size()) return util::Err{std::string("unterminated string literal")};
      ++i;  // closing quote
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(body);
      out.push_back(std::move(t));
      continue;
    }
    // Two-character comparison operators first.
    if ((c == '<' || c == '>' || c == '!') && peek(1) == '=') {
      Token t;
      t.kind = TokenKind::kSymbol;
      t.text = std::string{c, '='};
      out.push_back(std::move(t));
      i += 2;
      continue;
    }
    if (std::string_view("(),;*=<>").find(c) != std::string_view::npos) {
      Token t;
      t.kind = TokenKind::kSymbol;
      t.text = std::string(1, c);
      out.push_back(std::move(t));
      ++i;
      continue;
    }
    return util::Err{"unexpected character '" + std::string(1, c) + "'"};
  }
  out.push_back(Token{});  // kEnd
  return out;
}

}  // namespace faultstudy::apps::sql
