// Values and rows for the mini SQL engine.
//
// The engine exists so that the MySQL faults the paper describes can be
// real code bugs exercised by real queries, not abstract flags: COUNT on an
// empty table, ORDER BY over zero rows, OPTIMIZE TABLE, FLUSH after LOCK,
// and the update-while-scanning index corruption. Two column types are
// enough for those.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace faultstudy::apps::sql {

using Value = std::variant<std::int64_t, std::string>;

std::string to_string(const Value& v);

/// Three-way comparison; integers before strings for cross-type order.
int compare(const Value& a, const Value& b) noexcept;

using Row = std::vector<Value>;

enum class ColumnType : std::uint8_t { kInteger, kText };

struct Column {
  std::string name;
  ColumnType type = ColumnType::kInteger;
};

struct Schema {
  std::vector<Column> columns;

  /// Index of a column by name; -1 when absent.
  int find(const std::string& name) const noexcept;
};

}  // namespace faultstudy::apps::sql
