#include "apps/sql/value.hpp"

namespace faultstudy::apps::sql {

std::string to_string(const Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  return std::get<std::string>(v);
}

int compare(const Value& a, const Value& b) noexcept {
  if (a.index() != b.index()) return a.index() < b.index() ? -1 : 1;
  if (const auto* ia = std::get_if<std::int64_t>(&a)) {
    const auto ib = std::get<std::int64_t>(b);
    return *ia < ib ? -1 : (*ia > ib ? 1 : 0);
  }
  const auto& sa = std::get<std::string>(a);
  const auto& sb = std::get<std::string>(b);
  return sa < sb ? -1 : (sa > sb ? 1 : 0);
}

int Schema::find(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace faultstudy::apps::sql
