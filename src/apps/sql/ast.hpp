// Statement AST for the mini SQL dialect.
//
// Supported statements (enough to express the study's killer queries):
//   CREATE TABLE t (col INT, col2 TEXT, ...)
//   INSERT INTO t VALUES (v, ...)
//   SELECT cols|*|COUNT(*) FROM t [WHERE col OP v [AND ...]]
//       [ORDER BY col [ASC|DESC]] [LIMIT n]
//   UPDATE t SET col = v [WHERE ...]
//   DELETE FROM t [WHERE ...]
//   OPTIMIZE TABLE t
//   LOCK TABLES t WRITE | UNLOCK TABLES
//   FLUSH TABLES
// Multiple statements separated by ';'.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "apps/sql/value.hpp"

namespace faultstudy::apps::sql {

enum class CompareOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

bool evaluate(CompareOp op, const Value& lhs, const Value& rhs) noexcept;

struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;
};

struct OrderBy {
  std::string column;
  bool descending = false;
};

struct SelectStatement {
  bool count_star = false;            ///< SELECT COUNT(*)
  std::vector<std::string> columns;   ///< empty + !count_star => '*'
  std::string table;
  std::vector<Predicate> where;
  std::optional<OrderBy> order_by;
  std::optional<std::int64_t> limit;
};

struct InsertStatement {
  std::string table;
  Row values;
};

struct UpdateStatement {
  std::string table;
  std::string column;
  Value value;
  std::vector<Predicate> where;
};

struct DeleteStatement {
  std::string table;
  std::vector<Predicate> where;
};

struct CreateStatement {
  std::string table;
  Schema schema;
};

struct AdminStatement {
  enum class Kind : std::uint8_t {
    kOptimize,
    kLockTables,
    kUnlockTables,
    kFlushTables,
  };
  Kind kind = Kind::kFlushTables;
  std::string table;  ///< for optimize/lock
};

struct Statement {
  std::variant<SelectStatement, InsertStatement, UpdateStatement,
               DeleteStatement, CreateStatement, AdminStatement>
      node;
};

}  // namespace faultstudy::apps::sql
