// Table heap + ordered index for the mini SQL engine.
//
// The index is an ordered multimap from the first column's value to row
// slots, scanned through an explicit cursor. The cursor is what makes the
// paper's mysql-ei-01 bug expressible: an UPDATE that modifies the indexed
// column *while scanning the index tree* re-encounters rows it moved ahead
// of the cursor and corrupts the index with duplicates.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "apps/sql/ast.hpp"
#include "apps/sql/value.hpp"

namespace faultstudy::apps::sql {

using Slot = std::uint32_t;

class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const noexcept { return schema_; }
  std::size_t row_count() const noexcept { return live_rows_; }

  /// Appends a row (must match the schema arity); indexes column 0.
  Slot insert(Row row);

  /// Marks a slot dead and removes its index entry.
  void erase(Slot slot);

  bool is_live(Slot slot) const noexcept;
  const Row& row(Slot slot) const { return rows_.at(slot); }

  /// In-place cell update, maintaining the index when column 0 changes.
  /// If `corrupt_index_on_key_move` is set (the injected mysql-ei-01 bug),
  /// the OLD index entry is left behind, creating duplicate index values.
  void update_cell(Slot slot, int column, Value value,
                   bool corrupt_index_on_key_move = false);

  /// All live slots in heap order.
  std::vector<Slot> scan_heap() const;

  /// Ordered index scan cursor over (key, slot) pairs.
  class IndexCursor {
   public:
    bool done() const noexcept { return it_ == end_; }
    Slot slot() const { return it_->second; }
    const Value& key() const { return it_->first; }
    void next() { ++it_; }

   private:
    friend class Table;
    using Iter = std::multimap<Value, Slot, bool (*)(const Value&, const Value&)>::const_iterator;
    IndexCursor(Iter it, Iter end) : it_(it), end_(end) {}
    Iter it_;
    Iter end_;
  };

  IndexCursor index_scan() const;

  /// Index entries per key value (tests use this to detect the planted
  /// duplicate-key corruption).
  std::size_t index_entries() const noexcept { return index_.size(); }

  /// Verifies index/heap consistency: every live row indexed exactly once
  /// under its current key. Returns false when corrupted.
  bool check_index() const;

  /// OPTIMIZE TABLE-style compaction: rebuilds heap and index from live
  /// rows, dropping dead slots.
  void compact();

 private:
  static bool value_less(const Value& a, const Value& b) {
    return compare(a, b) < 0;
  }

  Schema schema_;
  std::vector<Row> rows_;
  std::vector<bool> dead_;
  std::size_t live_rows_ = 0;
  std::multimap<Value, Slot, bool (*)(const Value&, const Value&)> index_{
      &Table::value_less};
};

}  // namespace faultstudy::apps::sql
