#include "apps/sql/engine.hpp"

#include <algorithm>
#include <unordered_set>

namespace faultstudy::apps::sql {

namespace {
ExecResult crash(std::string message) {
  ExecResult r;
  r.status = ExecStatus::kCrash;
  r.message = std::move(message);
  return r;
}
ExecResult error(std::string message) {
  ExecResult r;
  r.status = ExecStatus::kError;
  r.message = std::move(message);
  return r;
}
}  // namespace

ExecResult Engine::execute(std::string_view sql) {
  auto statements = parse(sql);
  if (!statements.ok()) return error(statements.error());
  ExecResult last;
  for (const Statement& statement : statements.value()) {
    last = run(statement);
    if (last.status != ExecStatus::kOk) return last;
  }
  return last;
}

ExecResult Engine::run(const Statement& statement) {
  return std::visit(
      [this](const auto& node) -> ExecResult {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, SelectStatement>) {
          return run_select(node);
        } else if constexpr (std::is_same_v<T, InsertStatement>) {
          return run_insert(node);
        } else if constexpr (std::is_same_v<T, UpdateStatement>) {
          return run_update(node);
        } else if constexpr (std::is_same_v<T, DeleteStatement>) {
          return run_delete(node);
        } else if constexpr (std::is_same_v<T, CreateStatement>) {
          return run_create(node);
        } else {
          return run_admin(node);
        }
      },
      statement.node);
}

Table* Engine::find_table(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const Table* Engine::find_table(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

bool Engine::matches(const Table& table, Slot slot,
                     const std::vector<Predicate>& where,
                     std::string* err) const {
  for (const Predicate& p : where) {
    const int col = table.schema().find(p.column);
    if (col < 0) {
      if (err != nullptr) *err = "unknown column " + p.column;
      return false;
    }
    if (!evaluate(p.op, table.row(slot)[static_cast<std::size_t>(col)],
                  p.literal)) {
      return false;
    }
  }
  return true;
}

ExecResult Engine::run_select(const SelectStatement& s) {
  const Table* table = find_table(s.table);
  if (table == nullptr) return error("unknown table " + s.table);

  if (s.count_star && s.where.empty()) {
    // --- mysql-ei-03: "the use of a count clause on an empty table
    // crashes MySQL ... missing check for empty tables" ---
    if (flags_.count_on_empty_crash && table->row_count() == 0) {
      return crash("segfault in COUNT(*) fast path: empty-table check "
                   "missing");
    }
    ExecResult r;
    r.affected = static_cast<std::int64_t>(table->row_count());
    return r;
  }

  std::string err;
  std::vector<Slot> hits;
  for (Slot slot : table->scan_heap()) {
    if (matches(*table, slot, s.where, &err)) hits.push_back(slot);
    if (!err.empty()) return error(err);
  }

  if (s.count_star) {
    if (flags_.count_on_empty_crash && hits.empty()) {
      return crash("segfault in COUNT(*): empty result, check missing");
    }
    ExecResult r;
    r.affected = static_cast<std::int64_t>(hits.size());
    return r;
  }

  if (s.order_by.has_value()) {
    // --- mysql-ei-02: "a query which selects zero records and has an
    // 'order by' clause will cause the server to crash ... missing
    // initialization statements" in the sort path ---
    if (flags_.orderby_empty_missing_init && hits.empty()) {
      return crash("uninitialized sort buffer dereferenced for empty "
                   "result set");
    }
    const int col = table->schema().find(s.order_by->column);
    if (col < 0) return error("unknown column " + s.order_by->column);
    std::stable_sort(hits.begin(), hits.end(), [&](Slot a, Slot b) {
      const int cmp = compare(table->row(a)[static_cast<std::size_t>(col)],
                              table->row(b)[static_cast<std::size_t>(col)]);
      return s.order_by->descending ? cmp > 0 : cmp < 0;
    });
  }

  ExecResult r;
  const std::size_t limit =
      s.limit.has_value() ? static_cast<std::size_t>(std::max<std::int64_t>(0, *s.limit))
                          : hits.size();
  for (std::size_t i = 0; i < hits.size() && i < limit; ++i) {
    const Row& row = table->row(hits[i]);
    if (s.columns.empty()) {
      r.rows.push_back(row);
    } else {
      Row projected;
      for (const auto& name : s.columns) {
        const int col = table->schema().find(name);
        if (col < 0) return error("unknown column " + name);
        projected.push_back(row[static_cast<std::size_t>(col)]);
      }
      r.rows.push_back(std::move(projected));
    }
  }
  r.affected = static_cast<std::int64_t>(r.rows.size());
  return r;
}

ExecResult Engine::run_insert(const InsertStatement& s) {
  Table* table = find_table(s.table);
  if (table == nullptr) return error("unknown table " + s.table);
  if (s.values.size() != table->schema().columns.size()) {
    return error("arity mismatch for " + s.table);
  }
  table->insert(s.values);
  ExecResult r;
  r.affected = 1;
  return r;
}

ExecResult Engine::run_update(const UpdateStatement& s) {
  Table* table = find_table(s.table);
  if (table == nullptr) return error("unknown table " + s.table);
  const int col = table->schema().find(s.column);
  if (col < 0) return error("unknown column " + s.column);
  std::string err;

  if (flags_.update_index_scan_bug && col == 0) {
    // --- mysql-ei-01, the buggy path: drive the update through the index
    // scan cursor. Moving a key forward leaves the stale entry behind
    // (duplicate values in the index); the post-statement consistency
    // check fires and the server dies. ---
    std::int64_t touched = 0;
    for (auto cursor = table->index_scan(); !cursor.done(); cursor.next()) {
      const Slot slot = cursor.slot();
      if (!table->is_live(slot)) continue;
      if (!matches(*table, slot, s.where, &err)) {
        if (!err.empty()) return error(err);
        continue;
      }
      table->update_cell(slot, col, s.value,
                         /*corrupt_index_on_key_move=*/true);
      ++touched;
      // The scan trips over the stale entry as soon as one exists — the
      // crash is mid-statement, leaving the update half applied (as the
      // real server did).
      if (!table->check_index()) {
        return crash("index consistency check failed during UPDATE: "
                     "duplicate values in the index");
      }
    }
    ExecResult r;
    r.affected = touched;
    return r;
  }

  // The fixed algorithm (the paper's fix): "first scanning for all matching
  // rows and then updating the found rows".
  std::vector<Slot> hits;
  for (Slot slot : table->scan_heap()) {
    if (matches(*table, slot, s.where, &err)) hits.push_back(slot);
    if (!err.empty()) return error(err);
  }
  for (Slot slot : hits) table->update_cell(slot, col, s.value);
  ExecResult r;
  r.affected = static_cast<std::int64_t>(hits.size());
  return r;
}

ExecResult Engine::run_delete(const DeleteStatement& s) {
  Table* table = find_table(s.table);
  if (table == nullptr) return error("unknown table " + s.table);
  std::string err;
  std::vector<Slot> hits;
  for (Slot slot : table->scan_heap()) {
    if (matches(*table, slot, s.where, &err)) hits.push_back(slot);
    if (!err.empty()) return error(err);
  }
  for (Slot slot : hits) table->erase(slot);
  ExecResult r;
  r.affected = static_cast<std::int64_t>(hits.size());
  return r;
}

ExecResult Engine::run_create(const CreateStatement& s) {
  if (tables_.contains(s.table)) return error("table exists: " + s.table);
  tables_.emplace(s.table, Table(s.schema));
  return {};
}

ExecResult Engine::run_admin(const AdminStatement& s) {
  switch (s.kind) {
    case AdminStatement::Kind::kOptimize: {
      Table* table = find_table(s.table);
      if (table == nullptr) return error("unknown table " + s.table);
      // --- mysql-ei-04: "an OPTIMIZE TABLE query crashes the server ...
      // caused by a missing initialization statement" ---
      if (flags_.optimize_missing_init) {
        return crash("OPTIMIZE TABLE used an uninitialized repair context");
      }
      table->compact();
      return {};
    }
    case AdminStatement::Kind::kLockTables:
      if (find_table(s.table) == nullptr) {
        return error("unknown table " + s.table);
      }
      locked_table_ = s.table;
      return {};
    case AdminStatement::Kind::kUnlockTables:
      locked_table_.clear();
      return {};
    case AdminStatement::Kind::kFlushTables:
      // --- mysql-ei-05: "a FLUSH TABLES command after a LOCK TABLES
      // command crashes the server": the flush path re-acquires locks the
      // session already holds. ---
      if (flags_.flush_after_lock_bug && holds_lock()) {
        return crash("FLUSH TABLES deadlocked on the session's own LOCK "
                     "TABLES lock and aborted");
      }
      return {};
  }
  return error("unhandled admin statement");
}

}  // namespace faultstudy::apps::sql
