// A GNOME-like desktop session on the simulated environment.
//
// Startup: spawns its applets as children (panel, clock, pager), connects to
// the sound daemon (descriptors), and reads its per-user configuration. Per
// UI event: updates widget state, writes configuration, and exchanges
// requests with applets (the race-prone path).
// Three study faults are implemented as real toolkit-level code bugs
// (apps/ui), enabled when the armed fault carries the matching id:
//   gnome-ei-01  pager settings tasklist-tab null dereference
//   gnome-ei-02  calendar prev-year local-copy assignment
//   gnome-ei-04  archive size through a signed 32-bit variable
#pragma once

#include "apps/app.hpp"
#include "apps/ui/toolkit.hpp"

namespace faultstudy::apps {

struct DesktopConfig {
  std::size_t base_fds = 12;   ///< X connection, config files, esd sockets
  std::size_t worker_pool = 5; ///< applets (panel, clock, pager, ...)
};

class Desktop final : public BaseApp {
 public:
  explicit Desktop(const DesktopConfig& config = {});

  void arm_fault(const ActiveFault& fault) override;

  bool start(env::Environment& e) override;
  StepResult handle(const WorkItem& item, env::Environment& e) override;
  void stop(env::Environment& e) override;
  SnapshotPtr snapshot() const override;
  bool restore(const SnapshotPtr& snapshot, env::Environment& e) override;
  void rejuvenate(env::Environment& e) override;

  std::uint64_t events_handled() const noexcept { return events_; }
  std::uint64_t open_windows() const noexcept { return open_windows_; }

 private:
  struct DesktopSnapshot;

  DesktopConfig config_;
  ui::UiFaultFlags ui_flags_;
  std::uint64_t events_ = 0;
  std::uint64_t open_windows_ = 1;  ///< the desktop itself
  int calendar_year_ = 1999;        ///< calendar view state (checkpointed)
};

}  // namespace faultstudy::apps
