#include "mining/dedup.hpp"

#include <algorithm>
#include <map>

#include "text/minhash.hpp"
#include "text/stemmer.hpp"
#include "text/stopwords.hpp"
#include "text/tfidf.hpp"
#include "text/tokenizer.hpp"
#include "util/thread_pool.hpp"

namespace faultstudy::mining {

UnionFind::UnionFind(std::size_t n) : parent_(n), rank_(n, 0) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
}

std::size_t UnionFind::find(std::size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

void UnionFind::unite(std::size_t a, std::size_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  if (rank_[a] == rank_[b]) ++rank_[a];
}

std::vector<std::vector<std::size_t>> UnionFind::groups() {
  std::map<std::size_t, std::vector<std::size_t>> by_root;
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    by_root[find(i)].push_back(i);
  }
  std::vector<std::vector<std::size_t>> out;
  out.reserve(by_root.size());
  // std::map iterates roots ascending, and find(i) for the smallest member
  // of a group is visited in index order, so groups come out ordered by
  // smallest member after a sort by front().
  for (auto& [root, members] : by_root) {
    (void)root;
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return out;
}

std::vector<std::vector<std::size_t>> cluster_documents(
    const std::vector<DedupDoc>& docs, const DedupParams& params) {
  const std::size_t n = docs.size();
  UnionFind uf(n);
  if (n < 2) return uf.groups();

  // Per-document work (tokenize, vectorize, sign) fans out to the pool;
  // every lane writes only its own index's slots. Model fitting, candidate
  // generation, and the union-find merge stay on this thread.
  util::ThreadPool pool(util::resolve_threads(params.threads));

  // Tokenize once.
  std::vector<std::vector<std::string>> tokens(n);
  pool.for_index(n, [&](std::size_t i) {
    tokens[i] =
        text::stem_all(text::remove_stopwords(text::tokenize(docs[i].text)));
  });

  // TF-IDF model over the documents being clustered.
  text::TfIdfModel model;
  model.fit(tokens);

  // MinHash/LSH candidates.
  text::MinHashParams mh;
  mh.num_hashes = params.num_hashes;
  mh.band_size = params.band_size;
  mh.shingle_size = params.shingle_size;
  const text::MinHasher hasher(mh);
  std::vector<text::DocVector> vectors(n);
  std::vector<text::Signature> sigs(n);
  pool.for_index(n, [&](std::size_t i) {
    vectors[i] = model.transform(tokens[i]);
    sigs[i] = hasher.signature(tokens[i]);
  });

  for (const auto& [i, j] : text::lsh_candidates(sigs, mh)) {
    if (text::cosine(vectors[i], vectors[j]) >= params.confirm_threshold) {
      uf.unite(i, j);
    }
  }
  return uf.groups();
}

}  // namespace faultstudy::mining
