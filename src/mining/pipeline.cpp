#include "mining/pipeline.hpp"

#include <algorithm>
#include <map>

#include "corpus/seeds.hpp"
#include "corpus/synth.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trial.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace faultstudy::mining {

namespace {

/// Majority ground-truth fault id over a set of reports (evaluation only).
template <typename GetId>
std::string majority_fault_id(std::size_t n, GetId&& get_id) {
  std::map<std::string, std::size_t> votes;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& id = get_id(i);
    if (!id.empty()) ++votes[id];
  }
  std::string best;
  std::size_t best_votes = 0;
  for (const auto& [id, v] : votes) {
    if (v > best_votes) {
      best = id;
      best_votes = v;
    }
  }
  return best;
}

void append_field(std::string& into, const std::string& piece) {
  if (piece.empty()) return;
  if (!into.empty()) into += '\n';
  into += piece;
}

/// Extracts the How-To-Repeat section from a structured mail body
/// ("How-To-Repeat: ...\nVersion: ...").
std::string extract_how_to_repeat(const std::string& body) {
  static constexpr std::string_view kTag = "How-To-Repeat:";
  const auto pos = body.find(kTag);
  if (pos == std::string::npos) return {};
  const auto start = pos + kTag.size();
  auto end = body.find("\nVersion:", start);
  if (end == std::string::npos) end = body.size();
  return std::string(util::trim(std::string_view(body).substr(start, end - start)));
}

/// Parses the release ordinal from a "Version: x.y.z" line; -1 if the named
/// version is not a known production release.
int parse_release_ordinal(const std::string& body,
                          const std::vector<std::string>& releases) {
  static constexpr std::string_view kTag = "Version:";
  const auto pos = body.find(kTag);
  if (pos == std::string::npos) return -1;
  auto line_end = body.find('\n', pos);
  if (line_end == std::string::npos) line_end = body.size();
  const auto version = util::trim(
      std::string_view(body).substr(pos + kTag.size(), line_end - pos - kTag.size()));
  for (std::size_t i = 0; i < releases.size(); ++i) {
    if (version == releases[i]) return static_cast<int>(i);
  }
  return -1;
}

/// Dedup parameters with the pipeline's thread count filled in when the
/// dedup stage does not set its own.
DedupParams dedup_params(const PipelineOptions& options) {
  DedupParams params = options.dedup;
  if (params.threads == 0) params.threads = options.threads;
  return params;
}

/// Routes the pipeline's transient pools into the profile sink for the
/// duration of a run; restores the previous sink on exit.
class AmbientStatsScope {
 public:
  explicit AmbientStatsScope(util::PoolStats* stats)
      : previous_(util::ambient_pool_stats()) {
    if (stats != nullptr) util::set_ambient_pool_stats(stats);
  }
  ~AmbientStatsScope() { util::set_ambient_pool_stats(previous_); }

  AmbientStatsScope(const AmbientStatsScope&) = delete;
  AmbientStatsScope& operator=(const AmbientStatsScope&) = delete;

 private:
  util::PoolStats* previous_;
};

/// Folds the run's funnel and output counts, plus its executor profile,
/// into the profile's registry.
void fold_pipeline_metrics(const PipelineResult& result,
                           telemetry::PipelineTelemetry& telem) {
  telemetry::MetricsRegistry& m = telem.metrics;
  const auto add = [&](std::string_view name, std::uint64_t n) {
    if (n > 0) m.add(m.counter(name), n);
  };
  const FilterFunnel& f = result.filter_funnel;
  add("mine/filter/total", f.total);
  add("mine/filter/runtime", f.runtime);
  add("mine/filter/production", f.production);
  add("mine/filter/severe", f.severe);
  const KeywordFunnel& k = result.keyword_funnel;
  add("mine/keyword/messages", k.total_messages);
  add("mine/keyword/hits", k.keyword_hits);
  add("mine/keyword/report_shaped", k.report_shaped);
  add("mine/keyword/threads", k.threads);
  add("mine/clusters", result.clusters);
  add("mine/unique_bugs", result.bugs.size());
  telemetry::fold_pool_stats(telem.pool, "mine/pool", m);
}

}  // namespace

PipelineResult run_tracker_pipeline(const corpus::BugTracker& tracker,
                                    const PipelineOptions& options) {
  PipelineResult result;
  telemetry::SpanTracer* tracer =
      options.telemetry != nullptr ? &options.telemetry->spans : nullptr;
  const AmbientStatsScope profile(
      options.telemetry != nullptr ? &options.telemetry->pool : nullptr);
  TELEM_SPAN(tracer, "mine/tracker");

  std::vector<corpus::BugReport> candidates;
  {
    TELEM_SPAN(tracer, "mine/filter");
    candidates = study_candidates(tracker, &result.filter_funnel);
  }

  std::vector<DedupDoc> docs;
  docs.reserve(candidates.size());
  for (const auto& r : candidates) {
    DedupDoc d;
    d.id = r.id;
    d.text = r.text.title + ' ' + r.text.how_to_repeat + ' ' + r.text.body;
    docs.push_back(std::move(d));
  }
  std::vector<std::vector<std::size_t>> clusters;
  {
    TELEM_SPAN(tracer, "mine/dedup");
    clusters = cluster_documents(docs, dedup_params(options));
  }
  result.clusters = clusters.size();

  // Each cluster's merge + classification is independent; bugs land in
  // their cluster's slot, keeping output order identical to the serial run.
  TELEM_SPAN(tracer, "mine/classify");
  const core::RuleClassifier classifier(options.policy);
  result.bugs = util::parallel_map<UniqueBug>(
      clusters.size(), options.threads, [&](std::size_t ci) {
    const auto& cluster = clusters[ci];
    // Primary report = earliest by date (ties broken by id).
    std::size_t primary = cluster.front();
    for (std::size_t idx : cluster) {
      if (candidates[idx].date < candidates[primary].date ||
          (candidates[idx].date == candidates[primary].date &&
           candidates[idx].id < candidates[primary].id)) {
        primary = idx;
      }
    }
    const corpus::BugReport& prim = candidates[primary];

    UniqueBug bug;
    bug.app = tracker.app();
    bug.title = prim.text.title;
    core::ReportText combined;
    combined.title = prim.text.title;
    for (std::size_t idx : cluster) {
      bug.report_ids.push_back(candidates[idx].id);
      append_field(combined.body, candidates[idx].text.body);
      // How-to-repeat text repeats across duplicates; keep the primary's.
      append_field(combined.developer_comments,
                   candidates[idx].text.developer_comments);
    }
    combined.how_to_repeat = prim.text.how_to_repeat;

    bug.bucket = tracker.app() == core::AppId::kGnome
                     ? corpus::gnome_bucket_of_date(prim.date)
                     : prim.release_ordinal;
    bug.classification = classifier.classify(combined);

    bug.truth_fault_id = majority_fault_id(
        cluster.size(),
        [&](std::size_t i) -> const std::string& {
          return candidates[cluster[i]].fault_id;
        });
    for (std::size_t idx : cluster) {
      if (candidates[idx].fault_id == bug.truth_fault_id &&
          candidates[idx].truth_class.has_value()) {
        bug.truth_class = candidates[idx].truth_class;
        break;
      }
    }
    return bug;
  });
  if (options.telemetry != nullptr) {
    fold_pipeline_metrics(result, *options.telemetry);
  }
  return result;
}

PipelineResult run_mailinglist_pipeline(const corpus::MailingList& list,
                                        const PipelineOptions& options) {
  PipelineResult result;
  telemetry::SpanTracer* tracer =
      options.telemetry != nullptr ? &options.telemetry->spans : nullptr;
  const AmbientStatsScope profile(
      options.telemetry != nullptr ? &options.telemetry->pool : nullptr);
  TELEM_SPAN(tracer, "mine/mailinglist");

  std::vector<MinedThread> threads;
  {
    TELEM_SPAN(tracer, "mine/keyword");
    threads = mine_threads(list, study_keywords(), &result.keyword_funnel);
  }

  std::vector<DedupDoc> docs;
  docs.reserve(threads.size());
  for (std::size_t i = 0; i < threads.size(); ++i) {
    DedupDoc d;
    d.id = threads[i].root.id;
    d.text = threads[i].root.subject + ' ' + threads[i].root.body;
    docs.push_back(std::move(d));
  }
  std::vector<std::vector<std::size_t>> clusters;
  {
    TELEM_SPAN(tracer, "mine/dedup");
    clusters = cluster_documents(docs, dedup_params(options));
  }
  result.clusters = clusters.size();

  // Fan out per cluster as in the tracker path; clusters whose version is
  // not a known production release come back with bucket < 0 and are
  // dropped by the serial, cluster-ordered filter below.
  TELEM_SPAN(tracer, "mine/classify");
  const core::RuleClassifier classifier(options.policy);
  auto bugs = util::parallel_map<UniqueBug>(
      clusters.size(), options.threads, [&](std::size_t ci) {
    const auto& cluster = clusters[ci];
    std::size_t primary = cluster.front();
    for (std::size_t idx : cluster) {
      if (threads[idx].root.date < threads[primary].root.date) primary = idx;
    }
    const MinedThread& prim = threads[primary];

    UniqueBug bug;
    bug.bucket =
        parse_release_ordinal(prim.root.body, corpus::mysql_releases());
    if (bug.bucket < 0) return bug;  // dropped after the sweep

    bug.app = core::AppId::kMysql;
    bug.title = prim.root.subject;

    core::ReportText combined;
    combined.title = prim.root.subject;
    combined.how_to_repeat = extract_how_to_repeat(prim.root.body);
    for (std::size_t idx : cluster) {
      bug.report_ids.push_back(threads[idx].root.id);
      append_field(combined.body, threads[idx].root.body);
      for (const auto& reply : threads[idx].replies) {
        bug.report_ids.push_back(reply.id);
        append_field(combined.developer_comments, reply.body);
      }
    }
    bug.classification = classifier.classify(combined);

    bug.truth_fault_id = majority_fault_id(
        cluster.size(),
        [&](std::size_t i) -> const std::string& {
          return threads[cluster[i]].root.fault_id;
        });
    for (std::size_t idx : cluster) {
      if (threads[idx].root.fault_id == bug.truth_fault_id &&
          threads[idx].root.truth_class.has_value()) {
        bug.truth_class = threads[idx].root.truth_class;
        break;
      }
    }
    return bug;
  });

  result.bugs.reserve(bugs.size());
  for (auto& bug : bugs) {
    if (bug.bucket >= 0) result.bugs.push_back(std::move(bug));
  }
  if (options.telemetry != nullptr) {
    fold_pipeline_metrics(result, *options.telemetry);
  }
  return result;
}

std::vector<core::Fault> to_faults(const PipelineResult& result) {
  std::vector<core::Fault> out;
  out.reserve(result.bugs.size());
  std::size_t ordinal = 0;
  for (const auto& bug : result.bugs) {
    core::Fault f;
    f.id = std::string(core::to_string(bug.app)) + "-mined-" +
           std::to_string(ordinal++);
    f.app = bug.app;
    f.title = bug.title;
    f.trigger = bug.classification.trigger;
    f.fault_class = bug.classification.fault_class;
    f.bucket = bug.bucket;
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace faultstudy::mining
