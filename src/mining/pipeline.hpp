// The end-to-end mining pipeline: corpus -> filters -> dedup -> classify.
//
// Reproduces the paper's methodology for each source:
//   tracker path  (Apache, GNOME): study criteria filters -> duplicate
//       clustering -> one unique bug per cluster -> rule classification;
//   mailing-list path (MySQL): keyword match -> report-shape narrowing ->
//       thread grouping -> cross-thread duplicate clustering -> rule
//       classification.
//
// Every unique bug carries provenance (the report ids merged into it) and,
// when the corpus is synthetic, the planted ground truth for evaluation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/aggregate.hpp"
#include "core/rule_classifier.hpp"
#include "corpus/mailinglist.hpp"
#include "corpus/tracker.hpp"
#include "mining/dedup.hpp"
#include "mining/filters.hpp"
#include "mining/keyword_search.hpp"

namespace faultstudy::telemetry {
struct PipelineTelemetry;
}  // namespace faultstudy::telemetry

namespace faultstudy::mining {

/// One unique bug after deduplication, with its classification.
struct UniqueBug {
  core::AppId app = core::AppId::kApache;
  std::string title;                     ///< primary (earliest) report title
  std::vector<std::uint64_t> report_ids; ///< provenance: merged reports
  int bucket = 0;                        ///< release ordinal / time bucket
  core::Classification classification;

  /// Ground truth planted by the synthetic generator (evaluation only).
  std::string truth_fault_id;
  std::optional<core::FaultClass> truth_class;
};

struct PipelineResult {
  std::vector<UniqueBug> bugs;
  FilterFunnel filter_funnel;    ///< tracker path
  KeywordFunnel keyword_funnel;  ///< mailing-list path
  std::size_t clusters = 0;
};

struct PipelineOptions {
  DedupParams dedup;
  core::RulePolicy policy;  ///< classification rule policy (paper default)
  /// Lanes for the per-report/per-cluster fan-out (tokenize, TF-IDF,
  /// MinHash, classification). 0 = auto (FAULTSTUDY_THREADS env var, else
  /// hardware_concurrency), 1 = the serial path. The merge is serial in
  /// cluster order, so the result is identical for every thread count.
  /// Also used for dedup when `dedup.threads` is 0.
  std::size_t threads = 0;
  /// Optional wall-domain self-profile: steady-clock stage spans, funnel
  /// counters, and executor stats for the pipeline's sweeps. Profiling only
  /// observes — mined results are identical with or without it — and wall
  /// times never enter determinism comparisons.
  telemetry::PipelineTelemetry* telemetry = nullptr;
};

/// Apache/GNOME path. GNOME buckets by report date (the modules release
/// independently); Apache buckets by release ordinal.
PipelineResult run_tracker_pipeline(const corpus::BugTracker& tracker,
                                    const PipelineOptions& options = {});

/// MySQL path. Buckets by the production release named in the report's
/// "Version:" line; reports naming no known release are dropped.
PipelineResult run_mailinglist_pipeline(const corpus::MailingList& list,
                                        const PipelineOptions& options = {});

/// Converts mined unique bugs to core::Fault records (for aggregation and
/// the figures). Fault ids are synthesized from the app and an ordinal.
std::vector<core::Fault> to_faults(const PipelineResult& result);

}  // namespace faultstudy::mining
