// Duplicate-report clustering.
//
// The paper counts *unique* bugs: 5220 Apache reports collapse to 50. This
// stage clusters reports that describe the same underlying fault using
// MinHash/LSH to propose candidate pairs and TF-IDF cosine similarity to
// confirm them, then unions confirmed pairs into clusters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace faultstudy::mining {

/// One document to be clustered; `text` is whatever the caller considers
/// identity-bearing (title + how-to-repeat + body).
struct DedupDoc {
  std::uint64_t id = 0;
  std::string text;
};

struct DedupParams {
  /// Cosine similarity at or above which a candidate pair is confirmed.
  double confirm_threshold = 0.55;
  /// MinHash signature length and LSH band size. 64 hashes in bands of 2
  /// catch pairs down to ~0.3 Jaccard with probability >0.95; the cosine
  /// confirmation stage removes the false positives this admits.
  std::uint32_t num_hashes = 64;
  std::uint32_t band_size = 2;
  std::uint32_t shingle_size = 3;
  /// Lanes for the per-document tokenize/vectorize/signature fan-out
  /// (0 = auto via FAULTSTUDY_THREADS / hardware_concurrency, 1 = serial).
  /// Candidate generation and the union-find merge stay serial, so the
  /// clustering is identical for every thread count.
  std::size_t threads = 0;
};

/// Clusters of indices into the input vector. Every document appears in
/// exactly one cluster; singletons are clusters of size one. Clusters are
/// ordered by their smallest member index, members ascending.
std::vector<std::vector<std::size_t>> cluster_documents(
    const std::vector<DedupDoc>& docs, const DedupParams& params = {});

/// Union-find over [0, n); exposed for tests and reused by the pipeline.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);
  std::size_t find(std::size_t x);
  void unite(std::size_t a, std::size_t b);
  /// Groups ordered by smallest member.
  std::vector<std::vector<std::size_t>> groups();

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint32_t> rank_;
};

}  // namespace faultstudy::mining
