// Selection filters implementing the paper's study criteria (Section 4):
// "we consider bugs on production versions of the software that were
// categorized as severe or critical", restricted to high-impact runtime
// failures (crash, error return, security, hang) and excluding faults
// "encountered during compilation and installation".
#pragma once

#include <vector>

#include "corpus/report.hpp"
#include "corpus/tracker.hpp"

namespace faultstudy::mining {

/// Severity severe or critical.
bool is_high_impact(const corpus::BugReport& report) noexcept;

/// Reported against a production release.
bool is_production(const corpus::BugReport& report) noexcept;

/// A failure of running software (not build/install/docs/feature/question).
bool is_runtime_failure(const corpus::BugReport& report) noexcept;

/// All three criteria.
bool passes_study_criteria(const corpus::BugReport& report) noexcept;

/// Funnel counts recorded as each filter is applied, for reporting the
/// "5220 reports -> 50 bugs" style narrowing.
struct FilterFunnel {
  std::size_t total = 0;
  std::size_t runtime = 0;     ///< after dropping non-runtime kinds
  std::size_t production = 0;  ///< after dropping non-production versions
  std::size_t severe = 0;      ///< after dropping below-severe reports
};

/// Applies the criteria in order, returning survivors and the funnel.
std::vector<corpus::BugReport> study_candidates(const corpus::BugTracker& tracker,
                                                FilterFunnel* funnel = nullptr);

}  // namespace faultstudy::mining
