// Keyword mining of mailing-list archives (the paper's MySQL methodology):
// match the study keywords ("crash", "segmentation", "race", "died"), keep
// the threads rooted at messages that are actually usable bug reports, and
// hand the roots plus their developer replies to deduplication.
#pragma once

#include <string>
#include <vector>

#include "corpus/mailinglist.hpp"

namespace faultstudy::mining {

/// The paper's keyword set.
const std::vector<std::string>& study_keywords();

/// True if any keyword (stem-matched) appears in subject or body.
bool matches_keywords(const corpus::MailMessage& message,
                      const std::vector<std::string>& keywords);

/// Heuristic for "this message is a usable bug report": it must state how to
/// repeat the problem and name the version it was observed on. Mirrors the
/// manual narrowing the authors performed when reading a few hundred
/// keyword hits.
bool is_bug_report_shaped(const corpus::MailMessage& message);

struct KeywordFunnel {
  std::size_t total_messages = 0;
  std::size_t keyword_hits = 0;
  std::size_t report_shaped = 0;  ///< hits that look like usable reports
  std::size_t threads = 0;        ///< distinct threads those roots start
};

/// One mined thread: the root report plus every reply in its thread
/// (replies carry the developers' diagnoses).
struct MinedThread {
  corpus::MailMessage root;
  std::vector<corpus::MailMessage> replies;
};

/// Runs keyword match + report-shape narrowing, grouping by thread.
std::vector<MinedThread> mine_threads(const corpus::MailingList& list,
                                      const std::vector<std::string>& keywords,
                                      KeywordFunnel* funnel = nullptr);

}  // namespace faultstudy::mining
