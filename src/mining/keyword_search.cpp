#include "mining/keyword_search.hpp"

#include <unordered_set>

#include "text/stemmer.hpp"
#include "text/tokenizer.hpp"
#include "util/strings.hpp"

namespace faultstudy::mining {

const std::vector<std::string>& study_keywords() {
  static const std::vector<std::string> kKeywords = {"crash", "segmentation",
                                                     "race", "died"};
  return kKeywords;
}

bool matches_keywords(const corpus::MailMessage& message,
                      const std::vector<std::string>& keywords) {
  std::unordered_set<std::string> stems;
  for (const auto& kw : keywords) stems.insert(text::stem(kw));
  const auto scan = [&](const std::string& s) {
    for (const auto& tok : text::tokenize(s)) {
      if (stems.contains(text::stem(tok))) return true;
    }
    return false;
  };
  return scan(message.subject) || scan(message.body);
}

bool is_bug_report_shaped(const corpus::MailMessage& message) {
  return util::icontains(message.body, "how-to-repeat:") &&
         util::icontains(message.body, "version:");
}

std::vector<MinedThread> mine_threads(const corpus::MailingList& list,
                                      const std::vector<std::string>& keywords,
                                      KeywordFunnel* funnel) {
  KeywordFunnel f;
  f.total_messages = list.size();

  std::unordered_set<std::uint64_t> root_threads;
  for (const corpus::MailMessage& m : list.messages()) {
    if (!matches_keywords(m, keywords)) continue;
    ++f.keyword_hits;
    if (!is_bug_report_shaped(m)) continue;
    ++f.report_shaped;
    root_threads.insert(m.thread_id);
  }
  f.threads = root_threads.size();

  // Collect each qualifying thread in arrival order: root first, then
  // replies (which include the developers' diagnoses).
  std::vector<MinedThread> out;
  out.reserve(root_threads.size());
  std::unordered_set<std::uint64_t> emitted;
  for (const corpus::MailMessage& m : list.messages()) {
    if (!root_threads.contains(m.thread_id)) continue;
    if (emitted.insert(m.thread_id).second) {
      MinedThread t;
      t.root = m;
      out.push_back(std::move(t));
    } else {
      for (auto& t : out) {
        if (t.root.thread_id == m.thread_id) {
          t.replies.push_back(m);
          break;
        }
      }
    }
  }
  if (funnel != nullptr) *funnel = f;
  return out;
}

}  // namespace faultstudy::mining
