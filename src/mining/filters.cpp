#include "mining/filters.hpp"

namespace faultstudy::mining {

bool is_high_impact(const corpus::BugReport& report) noexcept {
  return report.severity == corpus::Severity::kSevere ||
         report.severity == corpus::Severity::kCritical;
}

bool is_production(const corpus::BugReport& report) noexcept {
  return report.track == corpus::VersionTrack::kProduction;
}

bool is_runtime_failure(const corpus::BugReport& report) noexcept {
  return report.kind == corpus::ReportKind::kRuntimeFailure;
}

bool passes_study_criteria(const corpus::BugReport& report) noexcept {
  return is_runtime_failure(report) && is_production(report) &&
         is_high_impact(report);
}

std::vector<corpus::BugReport> study_candidates(
    const corpus::BugTracker& tracker, FilterFunnel* funnel) {
  FilterFunnel f;
  f.total = tracker.size();
  std::vector<corpus::BugReport> out;
  for (const corpus::BugReport& r : tracker.reports()) {
    if (!is_runtime_failure(r)) continue;
    ++f.runtime;
    if (!is_production(r)) continue;
    ++f.production;
    if (!is_high_impact(r)) continue;
    ++f.severe;
    out.push_back(r);
  }
  if (funnel != nullptr) *funnel = f;
  return out;
}

}  // namespace faultstudy::mining
