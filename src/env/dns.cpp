#include "env/dns.hpp"

namespace faultstudy::env {

DnsHealth DnsServer::health(Tick now) const noexcept {
  return now < forced_until_ ? forced_ : DnsHealth::kHealthy;
}

void DnsServer::break_until(DnsHealth state, Tick until) noexcept {
  forced_ = state;
  forced_until_ = until;
  if (state != DnsHealth::kHealthy) {
    FS_FORENSIC(flight_,
                record(forensics::FlightCode::kDnsBroken,
                       static_cast<std::uint64_t>(state), until));
    FS_COVER(coverage_, hit(obs::Site::kEnvDnsBroken));
  }
}

DnsReply DnsServer::resolve(const std::string& host, Tick now) const {
  (void)host;
  FS_TELEM(counters_, dns_lookups++);
  switch (health(now)) {
    case DnsHealth::kErroring:
      FS_TELEM(counters_, dns_errors++);
      FS_COVER(coverage_, hit(obs::Site::kEnvDnsError));
      return {.ok = false, .latency = kNormalLatency};
    case DnsHealth::kSlow:
      FS_TELEM(counters_, dns_slow_replies++);
      FS_COVER(coverage_, hit(obs::Site::kEnvDnsSlow));
      return {.ok = true, .latency = kSlowLatency};
    case DnsHealth::kHealthy:
      break;
  }
  return {.ok = true, .latency = kNormalLatency};
}

DnsReply DnsServer::reverse(const std::string& address, Tick now) const {
  if (!reverse_records_.contains(address)) {
    FS_TELEM(counters_, dns_reverse_misses++);
    FS_COVER(coverage_, hit(obs::Site::kEnvDnsReverseMiss));
    return {.ok = false, .latency = kNormalLatency};
  }
  return resolve(address, now);
}

void DnsServer::configure_reverse(const std::string& address) {
  reverse_records_.insert(address);
}

void DnsServer::remove_reverse(const std::string& address) {
  reverse_records_.erase(address);
}

bool DnsServer::has_reverse(const std::string& address) const {
  return reverse_records_.contains(address);
}

}  // namespace faultstudy::env
