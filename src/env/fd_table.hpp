// Simulated file-descriptor accounting.
//
// A single system-wide pool with per-owner accounting. Owners are
// applications ("apache") or external actors ("webserver-neighbor",
// "sound-utilities") — the paper's EDN faults include descriptor shortages
// caused both by the application's own appetite and by competing programs.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>

#include "forensics/recorder.hpp"
#include "obs/probes.hpp"
#include "telemetry/counters.hpp"

namespace faultstudy::env {

class FdTable {
 public:
  explicit FdTable(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t used() const noexcept { return used_; }
  std::size_t available() const noexcept { return capacity_ - used_; }

  /// Acquires `n` descriptors for `owner`; false (and no change) when fewer
  /// than `n` remain.
  bool acquire(const std::string& owner, std::size_t n);

  /// Releases up to `n` descriptors held by `owner`.
  void release(const std::string& owner, std::size_t n);

  /// Releases everything `owner` holds; returns how many were freed.
  std::size_t release_all(const std::string& owner);

  std::size_t held_by(const std::string& owner) const;

  /// Grows the table (Section 6.2's first countermeasure: "the operating
  /// system may be able to dynamically increase the number of file
  /// descriptors available to a process").
  void grow(std::size_t extra) noexcept { capacity_ += extra; }

  /// Per-trial telemetry sink; nullptr (the default) records nothing.
  void set_counters(telemetry::ResourceCounters* counters) noexcept {
    counters_ = counters;
  }

  /// Per-trial flight recorder; nullptr (the default) records nothing.
  void set_flight(forensics::FlightRecorder* flight) noexcept {
    flight_ = flight;
  }

  /// Per-trial coverage map; nullptr (the default) records nothing.
  void set_coverage(obs::CoverageMap* coverage) noexcept {
    coverage_ = coverage;
  }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::unordered_map<std::string, std::size_t> held_;
  telemetry::ResourceCounters* counters_ = nullptr;
  forensics::FlightRecorder* flight_ = nullptr;
  obs::CoverageMap* coverage_ = nullptr;
};

}  // namespace faultstudy::env
