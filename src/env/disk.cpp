#include "env/disk.hpp"

namespace faultstudy::env {

Disk::WriteResult Disk::append(const std::string& path, std::uint64_t bytes) {
  if (free_space() < bytes) {
    FS_TELEM(counters_, disk_write_failures++);
    FS_FORENSIC(flight_,
                record(forensics::FlightCode::kDiskFull, bytes, used_));
    FS_COVER(coverage_, hit(obs::Site::kEnvDiskNoSpace));
    return WriteResult::kNoSpace;
  }
  auto& info = files_[path];
  if (info.size + bytes > max_file_size_) {
    FS_TELEM(counters_, disk_write_failures++);
    FS_FORENSIC(flight_, record(forensics::FlightCode::kFileSizeLimit, bytes,
                                max_file_size_));
    FS_COVER(coverage_, hit(obs::Site::kEnvDiskFileTooBig));
    return WriteResult::kFileTooBig;
  }
  info.size += bytes;
  used_ += bytes;
  FS_TELEM(counters_, disk_writes++);
  FS_TELEM(counters_, disk_bytes_written += bytes);
  FS_TELEM_PEAK(counters_, peak_disk_used, used_);
  return WriteResult::kOk;
}

void Disk::truncate(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return;
  used_ -= it->second.size;
  it->second.size = 0;
  FS_TELEM(counters_, disk_truncates++);
}

void Disk::remove(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return;
  used_ -= it->second.size;
  files_.erase(it);
}

void Disk::consume_external(std::uint64_t target_used) {
  if (target_used <= used_) return;
  const std::uint64_t grow = target_used - used_;
  files_["/external/ballast"].size += grow;
  used_ += grow;
}

std::optional<FileInfo> Disk::stat(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

void Disk::set_owner(const std::string& path, std::int64_t uid) {
  files_[path].owner_uid = uid;
}

std::vector<std::string> Disk::list_prefix(const std::string& prefix) const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, info] : files_) {
    (void)info;
    if (path.starts_with(prefix)) out.push_back(path);
  }
  return out;
}

std::uint64_t Disk::used_under(const std::string& prefix) const {
  std::uint64_t total = 0;
  for (const auto& [path, info] : files_) {
    if (path.starts_with(prefix)) total += info.size;
  }
  return total;
}

}  // namespace faultstudy::env
