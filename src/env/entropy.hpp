// Simulated /dev/random entropy pool.
//
// Reads drain the pool; environmental events (interrupts, input) refill it
// at a steady rate per tick. The apache-edt-07 fault blocks when a read
// wants more bits than the pool holds — transient because recovery takes
// time, and time refills the pool.
#pragma once

#include <cstdint>

#include "env/clock.hpp"
#include "forensics/recorder.hpp"
#include "obs/probes.hpp"
#include "telemetry/counters.hpp"

namespace faultstudy::env {

class EntropyPool {
 public:
  EntropyPool(std::uint64_t initial_bits, std::uint64_t refill_per_tick)
      : bits_(initial_bits), refill_per_tick_(refill_per_tick) {}

  std::uint64_t bits(Tick now) const noexcept;

  /// Attempts to take `want` bits at time `now`; false if insufficient
  /// (a real read would block — callers treat that as the failure).
  bool take(std::uint64_t want, Tick now) noexcept;

  /// Drops the pool to `bits` at `now` (arming the shortage condition).
  void drain_to(std::uint64_t bits, Tick now) noexcept;

  std::uint64_t refill_rate() const noexcept { return refill_per_tick_; }

  /// Per-trial telemetry sink; nullptr (the default) records nothing.
  void set_counters(telemetry::ResourceCounters* counters) noexcept {
    counters_ = counters;
  }

  /// Per-trial flight recorder; nullptr (the default) records nothing.
  void set_flight(forensics::FlightRecorder* flight) noexcept {
    flight_ = flight;
  }

  /// Per-trial coverage map; nullptr (the default) records nothing.
  void set_coverage(obs::CoverageMap* coverage) noexcept {
    coverage_ = coverage;
  }

 private:
  void settle(Tick now) const noexcept;

  mutable std::uint64_t bits_;
  std::uint64_t refill_per_tick_;
  mutable Tick last_ = 0;
  telemetry::ResourceCounters* counters_ = nullptr;
  forensics::FlightRecorder* flight_ = nullptr;
  obs::CoverageMap* coverage_ = nullptr;
  static constexpr std::uint64_t kPoolMax = 4096;
};

}  // namespace faultstudy::env
