// Simulated signal delivery with masking windows.
//
// Models the MySQL fault "race condition between the masking of a signal and
// its arrival": an application masks a signal at some point in an operation;
// a signal arriving in the window before the mask is applied hits the buggy
// path. Arrival timing comes from the scheduler's interleaving draw.
#pragma once

#include <string>
#include <vector>

#include "env/clock.hpp"
#include "forensics/recorder.hpp"
#include "obs/probes.hpp"

namespace faultstudy::env {

enum class Signal { kHup = 1, kUsr1 = 10, kTerm = 15, kChld = 17 };

struct PendingSignal {
  Signal signal = Signal::kHup;
  Tick deliver_at = 0;
};

class SignalBus {
 public:
  /// Schedules a signal for delivery at `at`.
  void raise(Signal signal, Tick at);

  /// Signals due at or before `now`; delivered signals are consumed.
  std::vector<Signal> deliver_due(Tick now);

  /// Pending (not yet due) count, for tests.
  std::size_t pending() const noexcept { return pending_.size(); }

  void clear() noexcept { pending_.clear(); }

  /// Per-trial flight recorder; nullptr (the default) records nothing.
  void set_flight(forensics::FlightRecorder* flight) noexcept {
    flight_ = flight;
  }

  /// Per-trial coverage map; nullptr (the default) records nothing.
  void set_coverage(obs::CoverageMap* coverage) noexcept {
    coverage_ = coverage;
  }

 private:
  std::vector<PendingSignal> pending_;
  forensics::FlightRecorder* flight_ = nullptr;
  obs::CoverageMap* coverage_ = nullptr;
};

}  // namespace faultstudy::env
