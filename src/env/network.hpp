// Simulated network: link speed, port ownership, interface presence, and an
// opaque exhaustible kernel resource.
#pragma once

#include <string>
#include <unordered_map>

#include "env/clock.hpp"
#include "forensics/recorder.hpp"
#include "obs/probes.hpp"
#include "telemetry/counters.hpp"

namespace faultstudy::env {

enum class LinkState { kNormal, kSlow, kDown };

class Network {
 public:
  LinkState link(Tick now) const noexcept;
  void degrade_until(LinkState state, Tick until) noexcept;

  /// The physical interface (the PCMCIA card of apache-edn-07).
  bool card_present() const noexcept { return card_present_; }
  void remove_card() noexcept {
    card_present_ = false;
    FS_FORENSIC(flight_, record(forensics::FlightCode::kCardRemoved));
  }
  void insert_card() noexcept { card_present_ = true; }

  /// Port binding. A port bound by one owner cannot be bound by another
  /// until released.
  bool bind_port(int port, const std::string& owner);
  void release_port(int port, const std::string& owner);
  std::size_t release_ports_of(const std::string& owner);
  bool port_bound(int port) const;
  std::string port_owner(int port) const;

  /// The "unknown network resource" of apache-edn-06: an opaque kernel pool
  /// that only a machine reboot replenishes.
  std::size_t kernel_resource_available() const noexcept { return kernel_resource_; }
  bool consume_kernel_resource(std::size_t n) noexcept;
  void set_kernel_resource(std::size_t n) noexcept { kernel_resource_ = n; }

  static constexpr Tick kNormalLatency = 1;
  static constexpr Tick kSlowLatency = 3000;

  /// Per-trial telemetry sink; nullptr (the default) records nothing.
  void set_counters(telemetry::ResourceCounters* counters) noexcept {
    counters_ = counters;
  }

  /// Per-trial flight recorder; nullptr (the default) records nothing.
  void set_flight(forensics::FlightRecorder* flight) noexcept {
    flight_ = flight;
  }

  /// Per-trial coverage map; nullptr (the default) records nothing.
  void set_coverage(obs::CoverageMap* coverage) noexcept {
    coverage_ = coverage;
  }

 private:
  LinkState forced_ = LinkState::kNormal;
  Tick forced_until_ = 0;
  bool card_present_ = true;
  std::unordered_map<int, std::string> ports_;
  std::size_t kernel_resource_ = 1u << 20;
  telemetry::ResourceCounters* counters_ = nullptr;
  forensics::FlightRecorder* flight_ = nullptr;
  obs::CoverageMap* coverage_ = nullptr;
};

}  // namespace faultstudy::env
