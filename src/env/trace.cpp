#include "env/trace.hpp"

namespace faultstudy::env {

std::string_view to_string(TraceOp op) noexcept {
  switch (op) {
    case TraceOp::kRead:
      return "read";
    case TraceOp::kWrite:
      return "write";
    case TraceOp::kLock:
      return "lock";
    case TraceOp::kUnlock:
      return "unlock";
    case TraceOp::kFork:
      return "fork";
    case TraceOp::kJoin:
      return "join";
  }
  return "?";
}

std::string_view object_name(ObjectId id) noexcept {
  switch (id) {
    case trace_objects::kSignalMask:
      return "signal-mask";
    case trace_objects::kAppletList:
      return "applet-list";
    case trace_objects::kScoreboard:
      return "scoreboard";
    case trace_objects::kSharedCounter:
      return "shared-counter";
    case trace_objects::kStateLock:
      return "state-lock";
  }
  return "object";
}

}  // namespace faultstudy::env
