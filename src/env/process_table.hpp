// Simulated kernel process table.
//
// Processes belong to an owner (an application id or the free-form "system")
// and may be marked hung. The paper's kProcessTableFull faults arise when an
// application's hung children consume every slot; generic recovery survives
// them because recovery kills all processes associated with the application.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "forensics/recorder.hpp"
#include "obs/probes.hpp"
#include "telemetry/counters.hpp"

namespace faultstudy::env {

using Pid = std::uint32_t;

struct Process {
  Pid pid = 0;
  std::string owner;
  bool hung = false;
  /// Network ports this process holds (released when it dies).
  std::vector<int> held_ports;
};

class ProcessTable {
 public:
  explicit ProcessTable(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t used() const noexcept { return procs_.size(); }
  std::size_t available() const noexcept { return capacity_ - procs_.size(); }
  bool full() const noexcept { return procs_.size() >= capacity_; }

  /// Forks a process for `owner`; nullopt when the table is full.
  std::optional<Pid> spawn(const std::string& owner);

  /// True if the pid existed.
  bool kill(Pid pid);

  /// Marks a process hung (it stops making progress but keeps its slot and
  /// its ports).
  bool mark_hung(Pid pid);

  /// Kills every process owned by `owner`; returns how many died. This is
  /// the recovery-system action "kill all processes associated with the
  /// application".
  std::size_t kill_owned_by(const std::string& owner);

  std::size_t count_owned_by(const std::string& owner) const;
  std::size_t count_hung_owned_by(const std::string& owner) const;

  Process* find(Pid pid);
  const Process* find(Pid pid) const;

  /// Grows the table (dynamic kernel limits, Section 6.2 countermeasure).
  void grow(std::size_t extra) noexcept { capacity_ += extra; }

  /// All live pids owned by `owner`.
  std::vector<Pid> owned_by(const std::string& owner) const;

  /// Same, written into a caller-provided vector (cleared first) so hot
  /// observers can reuse one allocation across calls.
  void owned_by(const std::string& owner, std::vector<Pid>& out) const;

  /// Per-trial telemetry sink; nullptr (the default) records nothing.
  void set_counters(telemetry::ResourceCounters* counters) noexcept {
    counters_ = counters;
  }

  /// Per-trial flight recorder; nullptr (the default) records nothing.
  void set_flight(forensics::FlightRecorder* flight) noexcept {
    flight_ = flight;
  }

  /// Per-trial coverage map; nullptr (the default) records nothing.
  void set_coverage(obs::CoverageMap* coverage) noexcept {
    coverage_ = coverage;
  }

 private:
  std::size_t capacity_;
  std::unordered_map<Pid, Process> procs_;
  Pid next_pid_ = 100;
  telemetry::ResourceCounters* counters_ = nullptr;
  forensics::FlightRecorder* flight_ = nullptr;
  obs::CoverageMap* coverage_ = nullptr;
};

}  // namespace faultstudy::env
