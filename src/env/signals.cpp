#include "env/signals.hpp"

#include <algorithm>

namespace faultstudy::env {

void SignalBus::raise(Signal signal, Tick at) {
  pending_.push_back({signal, at});
  FS_FORENSIC(flight_, record(forensics::FlightCode::kSignalRaised,
                              static_cast<std::uint64_t>(signal), at));
  FS_COVER(coverage_, hit(obs::Site::kEnvSignalRaised));
}

std::vector<Signal> SignalBus::deliver_due(Tick now) {
  auto it = std::stable_partition(
      pending_.begin(), pending_.end(),
      [now](const PendingSignal& p) { return p.deliver_at > now; });
  std::vector<Signal> due;
  due.reserve(static_cast<std::size_t>(pending_.end() - it));
  for (auto d = it; d != pending_.end(); ++d) due.push_back(d->signal);
  pending_.erase(it, pending_.end());
  return due;
}

}  // namespace faultstudy::env
