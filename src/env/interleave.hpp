// Structural two-thread interleavings.
//
// Rather than parameterizing every race by an abstract hazard window, the
// described race faults can be given their real shape: thread A executes a
// short sequence of atomic steps, thread B contributes one step (a signal
// delivery, an applet-removal notification), and the scheduler decides
// where B's step lands among A's. The race fires exactly when B lands in
// A's vulnerable gap — the probability of triggering *emerges from the
// structure* (vulnerable gaps / possible positions) instead of being a
// tuning knob, and retry redraws the position, which is the paper's
// transience argument in mechanical form.
#pragma once

#include "env/scheduler.hpp"

namespace faultstudy::env {

/// Where thread B's single step lands among A's `a_steps` atomic steps:
/// position p in [0, a_steps] means "after A's first p steps". Uniform over
/// positions, driven by (and subject to the replay bias of) the scheduler.
int interleave_position(Scheduler& scheduler, int a_steps);

/// The signal-mask race (mysql-edt-01): thread A computes its new signal
/// mask at step `mask_computed_at` and applies it one step later; a signal
/// arriving exactly in that gap hits the torn-down handler state.
/// Returns true when the race fires.
bool signal_mask_race(Scheduler& scheduler, int a_steps,
                      int mask_computed_at);

/// The request-vs-removal race (gnome-edt-03): the applet's action request
/// is registered at step `request_registered_at`; the removal path
/// invalidates the applet one step later. A removal notification landing in
/// the gap leaves the panel holding a dangling applet reference.
bool request_removal_race(Scheduler& scheduler, int a_steps,
                          int request_registered_at);

}  // namespace faultstudy::env
