// Structural two-thread interleavings.
//
// Rather than parameterizing every race by an abstract hazard window, the
// described race faults can be given their real shape: thread A executes a
// short sequence of atomic steps, thread B contributes one step (a signal
// delivery, an applet-removal notification), and the scheduler decides
// where B's step lands among A's. The race fires exactly when B lands in
// A's vulnerable gap — the probability of triggering *emerges from the
// structure* (vulnerable gaps / possible positions) instead of being a
// tuning knob, and retry redraws the position, which is the paper's
// transience argument in mechanical form.
//
// Each structural race also has a trace shape (env/trace.hpp): the
// synchronization events the two threads would execute. The traced
// overloads emit that shape in the drawn global order so the analysis
// layer's happens-before detector can find the race independently of
// whether this particular interleaving triggered it.
#pragma once

#include "env/scheduler.hpp"
#include "env/trace.hpp"

namespace faultstudy::env {

/// Maps an already-drawn interleaving onto the a_steps+1 possible positions
/// for thread B's step: position p means "after A's first p steps".
int position_of(const Interleaving& draw, int a_steps) noexcept;

/// Where thread B's single step lands among A's `a_steps` atomic steps:
/// position p in [0, a_steps] means "after A's first p steps". Uniform over
/// positions, driven by (and subject to the replay bias of) the scheduler.
int interleave_position(Scheduler& scheduler, int a_steps);

/// The synchronization shape of a two-thread operation: thread A runs
/// `a_steps` lock-protected steps over `shared`, except for one unguarded
/// access after step `unguarded_at` (the bug's vulnerable gap; -1 in the
/// fixed program). Thread B contributes one asynchronous write to `shared`,
/// lock-protected in the fixed program (`async_locked`), bare in the buggy
/// one.
struct TwoThreadShape {
  ObjectId shared = trace_objects::kSharedCounter;
  ObjectId lock = trace_objects::kStateLock;
  int a_steps = 8;
  int unguarded_at = -1;
  bool async_locked = true;
  const char* a_note = "worker step";
  const char* gap_note = "unguarded access in the vulnerable gap";
  const char* b_note = "asynchronous event";
};

inline constexpr ThreadId kTraceMainThread = 0;
inline constexpr ThreadId kTraceWorkerThread = 1;
inline constexpr ThreadId kTraceAsyncThread = 2;

/// Emits the full two-thread event trace for `shape` with thread B's step
/// landing at `b_position` (a value from position_of / interleave_position).
/// No-op when the log is disabled.
void emit_two_thread_trace(TraceLog& log, Tick now, const TwoThreadShape& shape,
                           int b_position);

/// The signal-mask race (mysql-edt-01): thread A computes its new signal
/// mask at step `mask_computed_at` and applies it one step later; a signal
/// arriving exactly in that gap hits the torn-down handler state.
/// Returns true when the race fires.
bool signal_mask_race(Scheduler& scheduler, int a_steps,
                      int mask_computed_at);

/// Traced variant: draws exactly once, like the untraced overload, and also
/// emits the buggy trace shape into `log`.
bool signal_mask_race(Scheduler& scheduler, TraceLog& log, Tick now,
                      int a_steps, int mask_computed_at);

/// The request-vs-removal race (gnome-edt-03): the applet's action request
/// is registered at step `request_registered_at`; the removal path
/// invalidates the applet one step later. A removal notification landing in
/// the gap leaves the panel holding a dangling applet reference.
bool request_removal_race(Scheduler& scheduler, int a_steps,
                          int request_registered_at);

/// Traced variant of the applet race; one draw, same as untraced.
bool request_removal_race(Scheduler& scheduler, TraceLog& log, Tick now,
                          int a_steps, int request_registered_at);

}  // namespace faultstudy::env
