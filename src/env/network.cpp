#include "env/network.hpp"

namespace faultstudy::env {

LinkState Network::link(Tick now) const noexcept {
  return now < forced_until_ ? forced_ : LinkState::kNormal;
}

void Network::degrade_until(LinkState state, Tick until) noexcept {
  forced_ = state;
  forced_until_ = until;
  if (state != LinkState::kNormal) {
    FS_FORENSIC(flight_,
                record(forensics::FlightCode::kLinkDegraded,
                       static_cast<std::uint64_t>(state), until));
    FS_COVER(coverage_, hit(obs::Site::kEnvLinkDegraded));
  }
}

bool Network::bind_port(int port, const std::string& owner) {
  auto [it, inserted] = ports_.emplace(port, owner);
  (void)it;
  if (inserted) {
    FS_TELEM(counters_, port_binds++);
  } else {
    FS_TELEM(counters_, port_bind_failures++);
    FS_FORENSIC(flight_,
                record(forensics::FlightCode::kPortDenied,
                       static_cast<std::uint64_t>(port)));
    FS_COVER(coverage_, hit(obs::Site::kEnvPortDenied));
  }
  return inserted;
}

void Network::release_port(int port, const std::string& owner) {
  auto it = ports_.find(port);
  if (it != ports_.end() && it->second == owner) {
    ports_.erase(it);
    FS_TELEM(counters_, ports_released++);
  }
}

std::size_t Network::release_ports_of(const std::string& owner) {
  std::size_t released = 0;
  for (auto it = ports_.begin(); it != ports_.end();) {
    if (it->second == owner) {
      it = ports_.erase(it);
      ++released;
    } else {
      ++it;
    }
  }
  FS_TELEM(counters_, ports_released += released);
  return released;
}

bool Network::port_bound(int port) const { return ports_.contains(port); }

std::string Network::port_owner(int port) const {
  auto it = ports_.find(port);
  return it == ports_.end() ? std::string() : it->second;
}

bool Network::consume_kernel_resource(std::size_t n) noexcept {
  if (kernel_resource_ < n) {
    FS_TELEM(counters_, kernel_resource_denied++);
    FS_FORENSIC(flight_, record(forensics::FlightCode::kKernelResourceDenied,
                                n, kernel_resource_));
    FS_COVER(coverage_, hit(obs::Site::kEnvKernelResourceDenied));
    return false;
  }
  kernel_resource_ -= n;
  return true;
}

}  // namespace faultstudy::env
