#include "env/scheduler.hpp"

#include <algorithm>
#include <cmath>

namespace faultstudy::env {

Interleaving Scheduler::draw() {
  FS_TELEM(counters_, sched_draws++);
  if (has_last_ && replay_bias_ > 0.0 && rng_.chance(replay_bias_)) {
    FS_TELEM(counters_, sched_replays++);
    FS_COVER(coverage_, hit(obs::Site::kEnvSchedReplay));
    return last_;
  }
  Interleaving i;
  i.raw = rng_.next_u64();
  i.phase = static_cast<double>(i.raw >> 11) * 0x1.0p-53;
  last_ = i;
  has_last_ = true;
  return i;
}

void Scheduler::set_replay_bias(double probability) noexcept {
  replay_bias_ = std::clamp(probability, 0.0, 1.0);
}

bool Scheduler::in_hazard_window(const Interleaving& i, double start,
                                 double width) noexcept {
  const double end = start + width;
  if (end <= 1.0) return i.phase >= start && i.phase < end;
  // Window wraps past 1.0.
  return i.phase >= start || i.phase < std::fmod(end, 1.0);
}

}  // namespace faultstudy::env
