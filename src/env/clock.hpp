// Virtual time for the simulated operating environment.
//
// One tick is an abstract unit (~1 ms of wall time). Transient conditions
// (a broken DNS server, a starved entropy pool, a slow network) heal after a
// number of ticks; recovery mechanisms consume ticks, which is exactly why
// they can outlive transient conditions.
#pragma once

#include <cstdint>

namespace faultstudy::env {

using Tick = std::int64_t;

class VirtualClock {
 public:
  Tick now() const noexcept { return now_; }
  void advance(Tick ticks) noexcept { now_ += ticks > 0 ? ticks : 0; }

 private:
  Tick now_ = 0;
};

}  // namespace faultstudy::env
