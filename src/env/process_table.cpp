#include "env/process_table.hpp"

namespace faultstudy::env {

std::optional<Pid> ProcessTable::spawn(const std::string& owner) {
  if (full()) {
    FS_TELEM(counters_, proc_spawn_failures++);
    FS_FORENSIC(flight_,
                record(forensics::FlightCode::kProcTableFull, capacity_));
    FS_COVER(coverage_, hit(obs::Site::kEnvProcSpawnDenied));
    return std::nullopt;
  }
  const Pid pid = next_pid_++;
  Process p;
  p.pid = pid;
  p.owner = owner;
  procs_.emplace(pid, std::move(p));
  FS_TELEM(counters_, proc_spawns++);
  FS_TELEM_PEAK(counters_, peak_procs, procs_.size());
  return pid;
}

bool ProcessTable::kill(Pid pid) {
  if (procs_.erase(pid) == 0) return false;
  FS_TELEM(counters_, proc_kills++);
  return true;
}

bool ProcessTable::mark_hung(Pid pid) {
  auto it = procs_.find(pid);
  if (it == procs_.end()) return false;
  it->second.hung = true;
  FS_TELEM(counters_, procs_marked_hung++);
  FS_FORENSIC(flight_, record(forensics::FlightCode::kProcHung, pid));
  FS_COVER(coverage_, hit(obs::Site::kEnvProcHung));
  return true;
}

std::size_t ProcessTable::kill_owned_by(const std::string& owner) {
  std::size_t killed = 0;
  for (auto it = procs_.begin(); it != procs_.end();) {
    if (it->second.owner == owner) {
      it = procs_.erase(it);
      ++killed;
    } else {
      ++it;
    }
  }
  FS_TELEM(counters_, proc_kills += killed);
  return killed;
}

std::size_t ProcessTable::count_owned_by(const std::string& owner) const {
  std::size_t n = 0;
  for (const auto& [pid, p] : procs_) {
    (void)pid;
    if (p.owner == owner) ++n;
  }
  return n;
}

std::size_t ProcessTable::count_hung_owned_by(const std::string& owner) const {
  std::size_t n = 0;
  for (const auto& [pid, p] : procs_) {
    (void)pid;
    if (p.owner == owner && p.hung) ++n;
  }
  return n;
}

Process* ProcessTable::find(Pid pid) {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : &it->second;
}

const Process* ProcessTable::find(Pid pid) const {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : &it->second;
}

std::vector<Pid> ProcessTable::owned_by(const std::string& owner) const {
  std::vector<Pid> out;
  owned_by(owner, out);
  return out;
}

void ProcessTable::owned_by(const std::string& owner,
                            std::vector<Pid>& out) const {
  out.clear();
  out.reserve(procs_.size());
  for (const auto& [pid, p] : procs_) {
    if (p.owner == owner) out.push_back(pid);
  }
}

}  // namespace faultstudy::env
