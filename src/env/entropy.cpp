#include "env/entropy.hpp"

#include <algorithm>

namespace faultstudy::env {

void EntropyPool::settle(Tick now) const noexcept {
  if (now <= last_) return;
  const std::uint64_t gained =
      static_cast<std::uint64_t>(now - last_) * refill_per_tick_;
  bits_ = std::min(kPoolMax, bits_ + gained);
  last_ = now;
}

std::uint64_t EntropyPool::bits(Tick now) const noexcept {
  settle(now);
  return bits_;
}

bool EntropyPool::take(std::uint64_t want, Tick now) noexcept {
  settle(now);
  FS_TELEM(counters_, entropy_reads++);
  if (bits_ < want) {
    FS_TELEM(counters_, entropy_blocked++);
    FS_FORENSIC(flight_,
                record(forensics::FlightCode::kEntropyBlocked, want, bits_));
    FS_COVER(coverage_, hit(obs::Site::kEnvEntropyBlocked));
    return false;
  }
  bits_ -= want;
  FS_TELEM(counters_, entropy_bits_taken += want);
  return true;
}

void EntropyPool::drain_to(std::uint64_t target, Tick now) noexcept {
  settle(now);
  bits_ = std::min(bits_, target);
}

}  // namespace faultstudy::env
