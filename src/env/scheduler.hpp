// Simulated thread scheduler: the source of interleaving non-determinism.
//
// A race-condition fault triggers only when the scheduler happens to produce
// an interleaving inside the bug's hazard window. Each execution attempt
// draws a fresh interleaving from the environment's entropy — this is
// exactly the paper's mechanism for why races are transient: "if the
// operation is retried, the specific interleaving of threads is likely to be
// different". Recovery techniques that deliberately reorder events
// (progressive retry [Wang93]) widen the redraw.
#pragma once

#include <cstdint>

#include "obs/probes.hpp"
#include "telemetry/counters.hpp"
#include "util/rng.hpp"

namespace faultstudy::env {

/// One concrete interleaving of the threads involved in an operation,
/// reduced to the quantity race predicates consume: a phase in [0, 1).
struct Interleaving {
  double phase = 0.0;
  std::uint64_t raw = 0;
};

class Scheduler {
 public:
  explicit Scheduler(std::uint64_t seed) : rng_(seed) {}

  /// Draws the interleaving for the next operation. With a replay bias set
  /// (see below), the previous interleaving is reproduced with that
  /// probability instead of drawing fresh.
  Interleaving draw();

  /// Rollback-replay tendency: deterministic replay after a rollback tends
  /// to reproduce the schedule that triggered the race, which is why
  /// progressive retry deliberately reorders events [Wang93]. Mechanisms
  /// set their replay bias when they attach (0 = every draw fresh).
  void set_replay_bias(double probability) noexcept;
  double replay_bias() const noexcept { return replay_bias_; }

  /// A race with hazard window `width` (fraction of phase space) triggers
  /// when the interleaving's phase falls inside [start, start+width).
  static bool in_hazard_window(const Interleaving& i, double start,
                               double width) noexcept;

  /// Per-trial telemetry sink; nullptr (the default) records nothing.
  void set_counters(telemetry::ResourceCounters* counters) noexcept {
    counters_ = counters;
  }

  /// Per-trial coverage map; nullptr (the default) records nothing.
  void set_coverage(obs::CoverageMap* coverage) noexcept {
    coverage_ = coverage;
  }

 private:
  util::Rng rng_;
  double replay_bias_ = 0.0;
  bool has_last_ = false;
  Interleaving last_;
  telemetry::ResourceCounters* counters_ = nullptr;
  obs::CoverageMap* coverage_ = nullptr;
};

}  // namespace faultstudy::env
