// Simulated Domain Name Service.
//
// DNS is the environment's most-cited transient actor in the study: lookups
// can error, respond slowly, or lack reverse records. Error and slow states
// heal after a deadline (someone restarts the name server or fixes the
// network) — the property that makes kDnsError/kDnsSlow transient. Missing
// reverse DNS, by contrast, is configuration: it stays missing until set.
#pragma once

#include <string>
#include <unordered_set>

#include "env/clock.hpp"
#include "forensics/recorder.hpp"
#include "obs/probes.hpp"
#include "telemetry/counters.hpp"

namespace faultstudy::env {

enum class DnsHealth { kHealthy, kErroring, kSlow };

struct DnsReply {
  bool ok = false;
  Tick latency = 0;
};

class DnsServer {
 public:
  DnsHealth health(Tick now) const noexcept;

  /// Puts the server into a failure state until `now + duration`.
  void break_until(DnsHealth state, Tick until) noexcept;

  /// Forward lookup. Errors while kErroring; while kSlow succeeds with a
  /// latency above any sane client timeout.
  DnsReply resolve(const std::string& host, Tick now) const;

  /// Reverse lookup of a client address; fails when the address has no
  /// PTR record configured.
  DnsReply reverse(const std::string& address, Tick now) const;

  void configure_reverse(const std::string& address);
  void remove_reverse(const std::string& address);
  bool has_reverse(const std::string& address) const;

  static constexpr Tick kNormalLatency = 2;
  static constexpr Tick kSlowLatency = 5000;

  /// Per-trial telemetry sink; nullptr (the default) records nothing.
  void set_counters(telemetry::ResourceCounters* counters) noexcept {
    counters_ = counters;
  }

  /// Per-trial flight recorder; nullptr (the default) records nothing.
  void set_flight(forensics::FlightRecorder* flight) noexcept {
    flight_ = flight;
  }

  /// Per-trial coverage map; nullptr (the default) records nothing.
  void set_coverage(obs::CoverageMap* coverage) noexcept {
    coverage_ = coverage;
  }

 private:
  DnsHealth forced_ = DnsHealth::kHealthy;
  Tick forced_until_ = 0;
  std::unordered_set<std::string> reverse_records_;
  // Lookups are logically const; the sink they record into is not.
  telemetry::ResourceCounters* counters_ = nullptr;
  forensics::FlightRecorder* flight_ = nullptr;
  obs::CoverageMap* coverage_ = nullptr;
};

}  // namespace faultstudy::env
