#include "env/environment.hpp"

namespace faultstudy::env {

Environment::Environment(const EnvironmentConfig& config)
    : config_(config),
      processes_(config.process_slots),
      fds_(config.fd_slots),
      disk_(config.disk_capacity, config.max_file_size),
      scheduler_(config.seed),
      entropy_(config.entropy_bits, config.entropy_refill_per_tick) {}

}  // namespace faultstudy::env
