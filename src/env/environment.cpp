#include "env/environment.hpp"

namespace faultstudy::env {

Environment::Environment(const EnvironmentConfig& config)
    : config_(config),
      processes_(config.process_slots),
      fds_(config.fd_slots),
      disk_(config.disk_capacity, config.max_file_size),
      scheduler_(config.seed),
      entropy_(config.entropy_bits, config.entropy_refill_per_tick) {}

void Environment::set_counters(telemetry::TrialCounters* counters) noexcept {
  counters_ = counters;
  telemetry::ResourceCounters* resources =
      counters != nullptr ? &counters->resources : nullptr;
  processes_.set_counters(resources);
  fds_.set_counters(resources);
  disk_.set_counters(resources);
  dns_.set_counters(resources);
  network_.set_counters(resources);
  scheduler_.set_counters(resources);
  entropy_.set_counters(resources);
}

void Environment::set_flight(forensics::FlightRecorder* flight) noexcept {
  flight_ = flight;
  processes_.set_flight(flight);
  fds_.set_flight(flight);
  disk_.set_flight(flight);
  dns_.set_flight(flight);
  network_.set_flight(flight);
  entropy_.set_flight(flight);
  signals_.set_flight(flight);
}

void Environment::set_coverage(obs::CoverageMap* coverage) noexcept {
  coverage_ = coverage;
  processes_.set_coverage(coverage);
  fds_.set_coverage(coverage);
  disk_.set_coverage(coverage);
  dns_.set_coverage(coverage);
  network_.set_coverage(coverage);
  scheduler_.set_coverage(coverage);
  entropy_.set_coverage(coverage);
  signals_.set_coverage(coverage);
}

}  // namespace faultstudy::env
