// Simulated file system: capacity, per-file sizes, a per-file size limit,
// and file metadata (the owner field a GNOME fault chokes on).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "forensics/recorder.hpp"
#include "obs/probes.hpp"
#include "telemetry/counters.hpp"

namespace faultstudy::env {

struct FileInfo {
  std::uint64_t size = 0;
  /// Owner uid; a negative value is the "illegal value in the owner field"
  /// from the GNOME study.
  std::int64_t owner_uid = 0;
};

class Disk {
 public:
  Disk(std::uint64_t capacity_bytes, std::uint64_t max_file_size)
      : capacity_(capacity_bytes), max_file_size_(max_file_size) {}

  std::uint64_t capacity() const noexcept { return capacity_; }
  std::uint64_t used() const noexcept { return used_; }
  std::uint64_t free_space() const noexcept { return capacity_ - used_; }
  std::uint64_t max_file_size() const noexcept { return max_file_size_; }
  bool full() const noexcept { return used_ >= capacity_; }

  enum class WriteResult { kOk, kNoSpace, kFileTooBig };

  /// Appends `bytes` to `path` (creating it if absent).
  WriteResult append(const std::string& path, std::uint64_t bytes);

  /// Truncates a file to zero length, reclaiming its space.
  void truncate(const std::string& path);

  /// Removes a file entirely.
  void remove(const std::string& path);

  /// Fills the disk up to `target_used` bytes with an external file (models
  /// other tenants of the file system).
  void consume_external(std::uint64_t target_used);

  std::optional<FileInfo> stat(const std::string& path) const;
  void set_owner(const std::string& path, std::int64_t uid);

  /// Grows the volume (the paper: "some systems may provide a way to
  /// automatically increase the disk capacity and hence avoid the bug
  /// during retry. If this becomes common, we would re-classify this as an
  /// environment-dependent-transient fault").
  void grow(std::uint64_t extra_bytes) noexcept { capacity_ += extra_bytes; }

  /// Raises the per-file size limit (e.g. large-file support enabled).
  void raise_file_size_limit(std::uint64_t new_limit) noexcept {
    if (new_limit > max_file_size_) max_file_size_ = new_limit;
  }

  /// Paths with the given prefix (e.g. the app's cache directory).
  std::vector<std::string> list_prefix(const std::string& prefix) const;

  /// Total bytes under a path prefix.
  std::uint64_t used_under(const std::string& prefix) const;

  /// Per-trial telemetry sink; nullptr (the default) records nothing.
  void set_counters(telemetry::ResourceCounters* counters) noexcept {
    counters_ = counters;
  }

  /// Per-trial flight recorder; nullptr (the default) records nothing.
  void set_flight(forensics::FlightRecorder* flight) noexcept {
    flight_ = flight;
  }

  /// Per-trial coverage map; nullptr (the default) records nothing.
  void set_coverage(obs::CoverageMap* coverage) noexcept {
    coverage_ = coverage;
  }

 private:
  std::uint64_t capacity_;
  std::uint64_t max_file_size_;
  std::uint64_t used_ = 0;
  std::unordered_map<std::string, FileInfo> files_;
  telemetry::ResourceCounters* counters_ = nullptr;
  forensics::FlightRecorder* flight_ = nullptr;
  obs::CoverageMap* coverage_ = nullptr;
};

}  // namespace faultstudy::env
