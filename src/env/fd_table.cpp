#include "env/fd_table.hpp"

#include <algorithm>

namespace faultstudy::env {

bool FdTable::acquire(const std::string& owner, std::size_t n) {
  if (available() < n) {
    FS_TELEM(counters_, fd_acquire_failures++);
    FS_FORENSIC(flight_,
                record(forensics::FlightCode::kFdExhausted, n, used_));
    FS_COVER(coverage_, hit(obs::Site::kEnvFdDenied));
    return false;
  }
  held_[owner] += n;
  used_ += n;
  FS_TELEM(counters_, fds_acquired += n);
  FS_TELEM_PEAK(counters_, peak_fds, used_);
  return true;
}

void FdTable::release(const std::string& owner, std::size_t n) {
  auto it = held_.find(owner);
  if (it == held_.end()) return;
  const std::size_t freed = std::min(n, it->second);
  it->second -= freed;
  used_ -= freed;
  if (it->second == 0) held_.erase(it);
  FS_TELEM(counters_, fds_released += freed);
}

std::size_t FdTable::release_all(const std::string& owner) {
  auto it = held_.find(owner);
  if (it == held_.end()) return 0;
  const std::size_t freed = it->second;
  used_ -= freed;
  held_.erase(it);
  FS_TELEM(counters_, fds_released += freed);
  return freed;
}

std::size_t FdTable::held_by(const std::string& owner) const {
  auto it = held_.find(owner);
  return it == held_.end() ? 0 : it->second;
}

}  // namespace faultstudy::env
