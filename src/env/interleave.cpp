#include "env/interleave.hpp"

namespace faultstudy::env {

int position_of(const Interleaving& draw, int a_steps) noexcept {
  if (a_steps < 0) a_steps = 0;
  // Map the interleaving phase onto the a_steps+1 possible positions.
  const int positions = a_steps + 1;
  int p = static_cast<int>(draw.phase * positions);
  if (p >= positions) p = positions - 1;
  return p;
}

int interleave_position(Scheduler& scheduler, int a_steps) {
  return position_of(scheduler.draw(), a_steps);
}

namespace {

void emit_async_step(TraceLog& log, Tick now, const TwoThreadShape& shape) {
  if (shape.async_locked) {
    log.record(kTraceAsyncThread, TraceOp::kLock, shape.lock, now);
    log.record(kTraceAsyncThread, TraceOp::kWrite, shape.shared, now,
               shape.b_note);
    log.record(kTraceAsyncThread, TraceOp::kUnlock, shape.lock, now);
  } else {
    log.record(kTraceAsyncThread, TraceOp::kWrite, shape.shared, now,
               shape.b_note);
  }
}

}  // namespace

void emit_two_thread_trace(TraceLog& log, Tick now, const TwoThreadShape& shape,
                           int b_position) {
  if (!log.enabled()) return;
  // The harness thread starts both threads: fork edges give each a
  // well-defined beginning without ordering them against each other.
  log.record(kTraceMainThread, TraceOp::kFork, kTraceWorkerThread, now);
  log.record(kTraceMainThread, TraceOp::kFork, kTraceAsyncThread, now);

  for (int s = 0; s < shape.a_steps; ++s) {
    if (s == b_position) emit_async_step(log, now, shape);
    if (s == shape.unguarded_at) {
      // The bug: the gap access touches the shared state outside the lock.
      log.record(kTraceWorkerThread, TraceOp::kWrite, shape.shared, now,
                 shape.gap_note);
      continue;
    }
    log.record(kTraceWorkerThread, TraceOp::kLock, shape.lock, now);
    log.record(kTraceWorkerThread, TraceOp::kRead, shape.shared, now,
               shape.a_note);
    log.record(kTraceWorkerThread, TraceOp::kUnlock, shape.lock, now);
  }
  if (b_position >= shape.a_steps) emit_async_step(log, now, shape);

  log.record(kTraceMainThread, TraceOp::kJoin, kTraceWorkerThread, now);
  log.record(kTraceMainThread, TraceOp::kJoin, kTraceAsyncThread, now);
}

bool signal_mask_race(Scheduler& scheduler, int a_steps,
                      int mask_computed_at) {
  const int p = interleave_position(scheduler, a_steps);
  // The vulnerable gap: after the mask is computed, before it is applied.
  return p == mask_computed_at + 1;
}

bool signal_mask_race(Scheduler& scheduler, TraceLog& log, Tick now,
                      int a_steps, int mask_computed_at) {
  const int p = interleave_position(scheduler, a_steps);
  TwoThreadShape shape;
  shape.shared = trace_objects::kSignalMask;
  shape.a_steps = a_steps;
  shape.unguarded_at = mask_computed_at + 1;
  shape.async_locked = false;
  shape.a_note = "worker reads handler state";
  shape.gap_note = "apply recomputed signal mask (mask not yet installed)";
  shape.b_note = "signal delivery mutates handler state";
  emit_two_thread_trace(log, now, shape, p);
  return p == mask_computed_at + 1;
}

bool request_removal_race(Scheduler& scheduler, int a_steps,
                          int request_registered_at) {
  const int p = interleave_position(scheduler, a_steps);
  return p == request_registered_at + 1;
}

bool request_removal_race(Scheduler& scheduler, TraceLog& log, Tick now,
                          int a_steps, int request_registered_at) {
  const int p = interleave_position(scheduler, a_steps);
  TwoThreadShape shape;
  shape.shared = trace_objects::kAppletList;
  shape.a_steps = a_steps;
  shape.unguarded_at = request_registered_at + 1;
  shape.async_locked = false;
  shape.a_note = "panel walks applet list";
  shape.gap_note = "dereference applet registered one step earlier";
  shape.b_note = "removal notification frees the applet entry";
  emit_two_thread_trace(log, now, shape, p);
  return p == request_registered_at + 1;
}

}  // namespace faultstudy::env
