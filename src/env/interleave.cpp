#include "env/interleave.hpp"

namespace faultstudy::env {

int interleave_position(Scheduler& scheduler, int a_steps) {
  if (a_steps < 0) a_steps = 0;
  const Interleaving draw = scheduler.draw();
  // Map the interleaving phase onto the a_steps+1 possible positions.
  const int positions = a_steps + 1;
  int p = static_cast<int>(draw.phase * positions);
  if (p >= positions) p = positions - 1;
  return p;
}

bool signal_mask_race(Scheduler& scheduler, int a_steps,
                      int mask_computed_at) {
  const int p = interleave_position(scheduler, a_steps);
  // The vulnerable gap: after the mask is computed, before it is applied.
  return p == mask_computed_at + 1;
}

bool request_removal_race(Scheduler& scheduler, int a_steps,
                          int request_registered_at) {
  const int p = interleave_position(scheduler, a_steps);
  return p == request_registered_at + 1;
}

}  // namespace faultstudy::env
