// Synchronization-event tracing: the raw material for happens-before
// analysis.
//
// The simulated applications execute their multi-threaded operations as
// structural interleavings (env/interleave). When tracing is enabled, each
// such operation also emits the sequence of memory and synchronization
// events — reads, writes, lock acquisitions/releases, fork/join edges — in
// the global order the scheduler chose. The analysis layer replays this
// stream through a vector-clock happens-before detector; because the trace
// records the *synchronization structure* and not just the outcome, a race
// is detectable even in executions whose interleaving happened to dodge the
// hazard window.
//
// Tracing is off by default and every record call is guarded by a single
// branch, so untraced trials pay nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "env/clock.hpp"

namespace faultstudy::env {

/// Logical thread id within one traced operation. Thread 0 is reserved for
/// the harness (fork/join bookkeeping); applications use 1+.
using ThreadId = std::uint32_t;

/// Identity of a shared object: a variable for read/write events, a mutex
/// for lock/unlock events, a thread for fork/join events.
using ObjectId = std::uint32_t;

enum class TraceOp : std::uint8_t {
  kRead = 0,  ///< thread reads shared variable `object`
  kWrite,     ///< thread writes shared variable `object`
  kLock,      ///< thread acquires mutex `object`
  kUnlock,    ///< thread releases mutex `object`
  kFork,      ///< thread starts thread `object` (happens-before edge)
  kJoin,      ///< thread joins thread `object` (happens-before edge)
};

std::string_view to_string(TraceOp op) noexcept;

struct TraceEvent {
  ThreadId thread = 0;
  TraceOp op = TraceOp::kRead;
  ObjectId object = 0;
  Tick at = 0;
  /// Human label for reports, e.g. "recompute signal mask".
  std::string note;
};

/// Append-only event log owned by the Environment. Disabled by default;
/// record() is a no-op (one branch) until enable() is called.
class TraceLog {
 public:
  void enable(bool on = true) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  void record(ThreadId thread, TraceOp op, ObjectId object, Tick at,
              std::string note = {}) {
    if (!enabled_) return;
    events_.push_back({thread, op, object, at, std::move(note)});
  }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); }

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

/// Well-known object ids, so emission sites and reports agree on names.
/// Variables and locks live in separate id spaces per TraceOp kind, but
/// distinct ids everywhere keep reports unambiguous.
namespace trace_objects {
inline constexpr ObjectId kSignalMask = 1;    ///< mysql-edt-01 shared state
inline constexpr ObjectId kAppletList = 2;    ///< gnome-edt-03 shared state
inline constexpr ObjectId kScoreboard = 3;    ///< apache worker scoreboard
inline constexpr ObjectId kSharedCounter = 4; ///< generic race specimens
inline constexpr ObjectId kStateLock = 101;   ///< mutex guarding the above
}  // namespace trace_objects

std::string_view object_name(ObjectId id) noexcept;

}  // namespace faultstudy::env
