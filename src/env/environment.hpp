// The operating environment: "states or events that occur outside of the
// application being studied" (Section 3 of the paper).
//
// Everything a fault's trigger condition can depend on lives here: the
// kernel's process and descriptor tables, the file system, DNS, the network,
// the thread scheduler, the entropy pool, signal delivery, the host's name,
// and wall-clock time. Given a fixed environment, the simulated applications
// are completely deterministic [Dijkstra72]; every non-deterministic
// behaviour in the harness is a read of this object.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "env/clock.hpp"
#include "env/disk.hpp"
#include "env/dns.hpp"
#include "env/entropy.hpp"
#include "env/fd_table.hpp"
#include "env/network.hpp"
#include "env/process_table.hpp"
#include "env/scheduler.hpp"
#include "env/signals.hpp"
#include "env/trace.hpp"
#include "forensics/recorder.hpp"
#include "obs/probes.hpp"
#include "telemetry/counters.hpp"

namespace faultstudy::env {

struct EnvironmentConfig {
  std::uint64_t seed = 1;
  std::size_t process_slots = 64;
  std::size_t fd_slots = 256;
  std::uint64_t disk_capacity = 1ull << 30;      ///< 1 GiB
  std::uint64_t max_file_size = 1ull << 26;      ///< 64 MiB ("2GB limit" scaled)
  std::uint64_t entropy_bits = 4096;
  std::uint64_t entropy_refill_per_tick = 8;
};

class Environment {
 public:
  explicit Environment(const EnvironmentConfig& config = {});

  // Subsystems.
  VirtualClock& clock() noexcept { return clock_; }
  const VirtualClock& clock() const noexcept { return clock_; }
  ProcessTable& processes() noexcept { return processes_; }
  FdTable& fds() noexcept { return fds_; }
  Disk& disk() noexcept { return disk_; }
  DnsServer& dns() noexcept { return dns_; }
  Network& network() noexcept { return network_; }
  Scheduler& scheduler() noexcept { return scheduler_; }
  EntropyPool& entropy() noexcept { return entropy_; }
  SignalBus& signals() noexcept { return signals_; }
  /// Synchronization-event log for happens-before analysis; disabled by
  /// default (see env/trace.hpp).
  TraceLog& trace() noexcept { return trace_; }
  const TraceLog& trace() const noexcept { return trace_; }

  Tick now() const noexcept { return clock_.now(); }

  /// Advances virtual time. Transient subsystem states (broken DNS, slow
  /// network) expire on their own deadlines; the entropy pool refills.
  void advance(Tick ticks) noexcept { clock_.advance(ticks); }

  const std::string& hostname() const noexcept { return hostname_; }
  void set_hostname(std::string name) { hostname_ = std::move(name); }

  const EnvironmentConfig& config() const noexcept { return config_; }

  /// Binds a per-trial telemetry sink: the resource block goes into every
  /// subsystem; apps and recovery mechanisms reach the app/recovery blocks
  /// through counters(). Pass nullptr to detach (the default state).
  void set_counters(telemetry::TrialCounters* counters) noexcept;

  /// The bound per-trial sink, or nullptr when telemetry is detached.
  telemetry::TrialCounters* counters() noexcept { return counters_; }

  /// Binds a per-trial flight recorder: subsystems record resource
  /// transitions (descriptor exhaustion, disk-full, link degradation, …)
  /// into the ring; apps and recovery mechanisms reach it through
  /// flight(). Pass nullptr to detach (the default state).
  void set_flight(forensics::FlightRecorder* flight) noexcept;

  /// The bound flight recorder, or nullptr when forensics is detached.
  forensics::FlightRecorder* flight() noexcept { return flight_; }

  /// Binds a per-trial coverage map: subsystems mark their denial/failure
  /// branches as exercised; apps and recovery mechanisms reach the map
  /// through coverage(). Pass nullptr to detach (the default state).
  void set_coverage(obs::CoverageMap* coverage) noexcept;

  /// The bound coverage map, or nullptr when coverage is detached.
  obs::CoverageMap* coverage() noexcept { return coverage_; }

 private:
  EnvironmentConfig config_;
  VirtualClock clock_;
  ProcessTable processes_;
  FdTable fds_;
  Disk disk_;
  DnsServer dns_;
  Network network_;
  Scheduler scheduler_;
  EntropyPool entropy_;
  SignalBus signals_;
  TraceLog trace_;
  std::string hostname_ = "production-host";
  telemetry::TrialCounters* counters_ = nullptr;
  forensics::FlightRecorder* flight_ = nullptr;
  obs::CoverageMap* coverage_ = nullptr;
};

}  // namespace faultstudy::env
